#include "util/flat.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace fencetrade::util {
namespace {

TEST(FlatMapTest, EmptyBasics) {
  FlatMap<int, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), m.end());
  EXPECT_EQ(m.count(7), 0u);
  EXPECT_FALSE(m.contains(7));
  EXPECT_EQ(m.erase(7), 0u);
}

TEST(FlatMapTest, SubscriptInsertsDefaultAndFinds) {
  FlatMap<int, int> m;
  m[3] = 30;
  m[1] = 10;
  m[2] = 20;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m[1], 10);
  EXPECT_EQ(m[2], 20);
  EXPECT_EQ(m[3], 30);
  // operator[] on a missing key default-constructs, like std::map.
  EXPECT_EQ(m[4], 0);
  EXPECT_EQ(m.size(), 4u);
}

TEST(FlatMapTest, IterationIsAscendingKeyOrder) {
  FlatMap<int, std::string> m;
  for (int k : {5, 1, 4, 2, 3}) m[k] = std::to_string(k);
  std::vector<int> keys;
  for (const auto& [k, v] : m) {
    keys.push_back(k);
    EXPECT_EQ(v, std::to_string(k));
  }
  EXPECT_EQ(keys, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FlatMapTest, EmplaceDoesNotOverwrite) {
  FlatMap<int, int> m;
  auto [it1, inserted1] = m.emplace(1, 100);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(it1->second, 100);
  auto [it2, inserted2] = m.emplace(1, 999);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 100);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, InsertOrAssignOverwrites) {
  FlatMap<int, int> m;
  m.insertOrAssign(1, 100);
  m.insertOrAssign(1, 200);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m[1], 200);
}

TEST(FlatMapTest, EraseKeepsOrder) {
  FlatMap<int, int> m;
  for (int k : {1, 2, 3, 4}) m[k] = k * 10;
  EXPECT_EQ(m.erase(2), 1u);
  EXPECT_EQ(m.erase(2), 0u);
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 4}));
}

TEST(FlatMapTest, EqualityIsValueEquality) {
  FlatMap<int, int> a, b;
  a[1] = 10;
  a[2] = 20;
  b[2] = 20;  // different insertion order, same content
  b[1] = 10;
  EXPECT_TRUE(a == b);
  b[3] = 30;
  EXPECT_FALSE(a == b);
}

TEST(FlatMapTest, MatchesStdMapUnderRandomWorkload) {
  // Differential test against std::map: same operation stream, same
  // observable state — the property the simulator relies on when it
  // serializes Config contents canonically.
  std::mt19937 rng(42);
  FlatMap<int, int> flat;
  std::map<int, int> ref;
  for (int step = 0; step < 2000; ++step) {
    const int k = static_cast<int>(rng() % 50);
    switch (rng() % 4) {
      case 0:
        flat[k] = step;
        ref[k] = step;
        break;
      case 1:
        flat.insertOrAssign(k, -step);
        ref[k] = -step;
        break;
      case 2:
        flat.emplace(k, step);
        ref.emplace(k, step);
        break;
      default:
        EXPECT_EQ(flat.erase(k), ref.erase(k));
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  auto it = ref.begin();
  for (const auto& [k, v] : flat) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
  EXPECT_EQ(it, ref.end());
}

TEST(FlatMapTest, ItemsExposesSortedBackingStorage) {
  FlatMap<int, int> m;
  m[2] = 20;
  m[1] = 10;
  const auto& items = m.items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], (std::pair<int, int>{1, 10}));
  EXPECT_EQ(items[1], (std::pair<int, int>{2, 20}));
}

TEST(FlatSetTest, InsertDeduplicatesAndSorts) {
  FlatSet<int> s;
  EXPECT_TRUE(s.insert(3).second);
  EXPECT_TRUE(s.insert(1).second);
  EXPECT_FALSE(s.insert(3).second);
  EXPECT_TRUE(s.insert(2).second);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.items(), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(s.contains(2));
  EXPECT_EQ(s.count(2), 1u);
  EXPECT_FALSE(s.contains(9));
  EXPECT_EQ(s.count(9), 0u);
}

TEST(FlatSetTest, WorksWithPairElements) {
  // (ProcId, Reg) schedule elements are stored in FlatSets by the
  // reduction machinery; pairs must order lexicographically.
  FlatSet<std::pair<int, int>> s;
  s.insert({1, 2});
  s.insert({0, 9});
  s.insert({1, 0});
  std::vector<std::pair<int, int>> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<std::pair<int, int>>{{0, 9}, {1, 0}, {1, 2}}));
}

TEST(FlatSetTest, MatchesStdSetUnderRandomWorkload) {
  std::mt19937 rng(7);
  FlatSet<std::uint32_t> flat;
  std::set<std::uint32_t> ref;
  for (int step = 0; step < 2000; ++step) {
    const std::uint32_t v = rng() % 100;
    EXPECT_EQ(flat.insert(v).second, ref.insert(v).second);
  }
  std::vector<std::uint32_t> got(flat.begin(), flat.end());
  std::vector<std::uint32_t> want(ref.begin(), ref.end());
  EXPECT_EQ(got, want);
}

TEST(FlatSetTest, ClearEmpties) {
  FlatSet<int> s;
  s.insert(1);
  s.insert(2);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(1));
  EXPECT_TRUE(s.insert(1).second);
}

}  // namespace
}  // namespace fencetrade::util
