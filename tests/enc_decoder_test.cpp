#include "encoding/decoder.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "util/check.h"

namespace fencetrade::enc {
namespace {

using sim::kNoOwner;
using sim::kNoReg;
using sim::LocalId;
using sim::MemoryModel;
using sim::ProgramBuilder;
using sim::Reg;
using sim::StepKind;

/// One process: write A=1; fence; return 0.
sim::System singleWriter() {
  sim::System sys;
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(kNoOwner, "A");
  ProgramBuilder b("writer");
  b.writeRegImm(a, 1);
  b.fence();
  b.retImm(0);
  sys.programs.push_back(b.build());
  return sys;
}

TEST(DecoderTest, RequiresPsoModel) {
  sim::System sys = singleWriter();
  sys.model = MemoryModel::TSO;
  EXPECT_THROW(Decoder d(&sys), util::CheckError);
}

TEST(DecoderTest, EmptyStacksDecodeToEmptyExecution) {
  sim::System sys = singleWriter();
  Decoder d(&sys);
  auto res = d.decode(StackSequence(1));
  EXPECT_TRUE(res.exec.empty());
  EXPECT_FALSE(res.config.procs[0].final);
  EXPECT_EQ(res.firstEmptyStep[0], 0);  // empty from the start
}

TEST(DecoderTest, ProceedRunsUntilFenceWithPendingWrites) {
  sim::System sys = singleWriter();
  Decoder d(&sys);
  StackSequence stacks(1);
  stacks[0].pushBottom(Command::proceed());
  auto res = d.decode(stacks);
  // The write happens, then the process stalls before its fence.
  ASSERT_EQ(res.exec.size(), 1u);
  EXPECT_EQ(res.exec[0].kind, StepKind::Write);
  EXPECT_TRUE(res.stacks[0].empty());  // proceed consumed (D2a)
  EXPECT_EQ(res.firstEmptyStep[0], 1);
  EXPECT_FALSE(res.config.procs[0].final);
  EXPECT_EQ(res.config.buffers[0].size(), 1u);
}

TEST(DecoderTest, CommitCommandReleasesTheBatch) {
  sim::System sys = singleWriter();
  Decoder d(&sys);
  StackSequence stacks(1);
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::commit());
  auto res = d.decode(stacks);
  ASSERT_EQ(res.exec.size(), 2u);
  EXPECT_EQ(res.exec[1].kind, StepKind::Commit);
  EXPECT_EQ(res.visibleCommits, 1);
  EXPECT_EQ(res.hiddenCommits, 0);
  EXPECT_EQ(res.config.readMem(0), 1);
}

TEST(DecoderTest, FullSingleProcessCode) {
  // proceed | commit | proceed | proceed drives the writer to its final
  // state: write, commit, fence, return.
  sim::System sys = singleWriter();
  Decoder d(&sys);
  StackSequence stacks(1);
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::commit());
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::proceed());
  auto res = d.decode(stacks);
  ASSERT_EQ(res.exec.size(), 4u);
  EXPECT_EQ(res.exec[0].kind, StepKind::Write);
  EXPECT_EQ(res.exec[1].kind, StepKind::Commit);
  EXPECT_EQ(res.exec[2].kind, StepKind::Fence);
  EXPECT_EQ(res.exec[3].kind, StepKind::Return);
  EXPECT_TRUE(res.config.procs[0].final);
  EXPECT_EQ(res.config.procs[0].retval, 0);
  EXPECT_TRUE(res.stacks[0].empty());
}

TEST(DecoderTest, ReturnBlockedUntilNbFinalMatches) {
  // A process poised at return(1) is waiting while NbFinal = 0
  // (classification condition r = NbFinal(C)).
  sim::System sys;
  sys.model = MemoryModel::PSO;
  sys.layout.alloc(kNoOwner, "A");
  {
    ProgramBuilder b("returns-one");
    b.fence();
    b.retImm(1);  // claims position 1 although it is alone
    sys.programs.push_back(b.build());
  }
  Decoder d(&sys);
  StackSequence stacks(1);
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::proceed());
  auto res = d.decode(stacks);
  // The fence executes (empty buffer), but the return never does.
  ASSERT_EQ(res.exec.size(), 1u);
  EXPECT_EQ(res.exec[0].kind, StepKind::Fence);
  EXPECT_FALSE(res.config.procs[0].final);
  EXPECT_EQ(d.classify(res.config, res.stacks, 0), ProcClass::Waiting);
}

TEST(DecoderTest, HiddenCommitInterleavesBeforeVisibleOne) {
  // Both processes write register A.  p0 is *later in π* (it only holds
  // proceed | wait-hidden-commit(1)): its buffered write must commit
  // immediately before p1's visible commit, so it is overwritten before
  // anyone can read it — p0 stays "unaware of" semantics intact.
  sim::System sys;
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(kNoOwner, "A");
  {
    ProgramBuilder b("later");  // p0: hidden writer, never finishes here
    b.writeRegImm(a, 20);
    b.fence();
    b.retImm(1);
    sys.programs.push_back(b.build());
  }
  {
    ProgramBuilder b("earlier");  // p1: visible writer, runs to the end
    b.writeRegImm(a, 11);
    b.fence();
    b.retImm(0);
    sys.programs.push_back(b.build());
  }
  Decoder d(&sys);
  StackSequence stacks(2);
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::waitHiddenCommit(1));
  stacks[1].pushBottom(Command::proceed());
  stacks[1].pushBottom(Command::commit());
  stacks[1].pushBottom(Command::proceed());
  stacks[1].pushBottom(Command::proceed());

  auto res = d.decode(stacks);
  EXPECT_EQ(res.hiddenCommits, 1);
  EXPECT_EQ(res.visibleCommits, 1);

  int hiddenIdx = -1, visibleIdx = -1;
  for (std::size_t i = 0; i < res.exec.size(); ++i) {
    if (res.exec[i].kind != StepKind::Commit) continue;
    if (res.hidden[i]) {
      hiddenIdx = static_cast<int>(i);
    } else {
      visibleIdx = static_cast<int>(i);
    }
  }
  ASSERT_GE(hiddenIdx, 0);
  ASSERT_GE(visibleIdx, 0);
  EXPECT_LT(hiddenIdx, visibleIdx);
  EXPECT_EQ(res.exec[hiddenIdx].p, 0);
  EXPECT_EQ(res.exec[visibleIdx].p, 1);
  // The earlier process's value overwrote the hidden one.
  EXPECT_EQ(res.config.readMem(a), 11);
  EXPECT_TRUE(res.config.procs[1].final);
  EXPECT_EQ(res.config.procs[1].retval, 0);
}

TEST(DecoderTest, WaitReadFinishReleasedByReturn) {
  // p0 (later in π) buffers a write to A and holds wait-read-finish(1);
  // p1 (earlier) reads A and returns.  p0's commit must wait for p1's
  // return so p1 never becomes aware of p0.
  sim::System sys;
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(kNoOwner, "A");
  {
    ProgramBuilder b("writer");  // p0
    b.writeRegImm(a, 7);
    b.fence();
    b.retImm(1);
    sys.programs.push_back(b.build());
  }
  {
    ProgramBuilder b("reader");  // p1
    LocalId x = b.local("x");
    b.readReg(x, a);
    b.fence();
    b.retImm(0);
    sys.programs.push_back(b.build());
  }
  Decoder d(&sys);
  StackSequence stacks(2);
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::waitReadFinish(1));
  stacks[0].pushBottom(Command::commit());
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::proceed());
  // Reader: one proceed per phase (read-run, fence, return).
  stacks[1].pushBottom(Command::proceed());
  stacks[1].pushBottom(Command::proceed());
  stacks[1].pushBottom(Command::proceed());

  auto res = d.decode(stacks);
  ASSERT_TRUE(res.config.procs[0].final);
  ASSERT_TRUE(res.config.procs[1].final);
  EXPECT_EQ(res.config.procs[0].retval, 1);
  EXPECT_EQ(res.config.procs[1].retval, 0);

  int readIdx = -1, commitIdx = -1, returnIdx = -1;
  for (std::size_t i = 0; i < res.exec.size(); ++i) {
    if (res.exec[i].kind == StepKind::Read) readIdx = static_cast<int>(i);
    if (res.exec[i].kind == StepKind::Commit) commitIdx = static_cast<int>(i);
    if (res.exec[i].kind == StepKind::Return && res.exec[i].p == 1) {
      returnIdx = static_cast<int>(i);
    }
  }
  ASSERT_GE(readIdx, 0);
  ASSERT_GE(commitIdx, 0);
  ASSERT_GE(returnIdx, 0);
  EXPECT_LT(readIdx, commitIdx);
  EXPECT_EQ(res.exec[readIdx].val, 0) << "p1 must not see p0's write";
  EXPECT_LT(returnIdx, commitIdx)
      << "p0 committed before the reader finished";
}

TEST(DecoderTest, WaitLocalFinishDelaysFirstStep) {
  // Register A lives in p1's segment.  p0 reads it and returns; p1 may
  // only start after p0 finished (wait-local-finish(1)).
  sim::System sys;
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(1, "A");  // owned by p1
  {
    ProgramBuilder b("reader");
    LocalId x = b.local("x");
    b.readReg(x, a);
    b.fence();
    b.retImm(0);
    sys.programs.push_back(b.build());
  }
  {
    ProgramBuilder b("owner");
    LocalId x = b.local("x");
    b.readReg(x, a);
    b.fence();
    b.retImm(1);
    sys.programs.push_back(b.build());
  }
  Decoder d(&sys);
  StackSequence stacks(2);
  // Accessor: read-run, fence, return.
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::proceed());
  // Segment owner: blocked until the accessor finishes, then the same
  // three phases.
  stacks[1].pushBottom(Command::waitLocalFinish(1));
  stacks[1].pushBottom(Command::proceed());
  stacks[1].pushBottom(Command::proceed());
  stacks[1].pushBottom(Command::proceed());

  auto res = d.decode(stacks);
  ASSERT_TRUE(res.config.procs[1].final);
  // p1's first step must come after p0's return.
  int p0Return = -1, p1First = -1;
  for (std::size_t i = 0; i < res.exec.size(); ++i) {
    if (res.exec[i].p == 0 && res.exec[i].kind == StepKind::Return) {
      p0Return = static_cast<int>(i);
    }
    if (res.exec[i].p == 1 && p1First == -1) p1First = static_cast<int>(i);
  }
  ASSERT_GE(p0Return, 0);
  ASSERT_GE(p1First, 0);
  EXPECT_GT(p1First, p0Return);
}

TEST(DecoderTest, ClassificationBasics) {
  sim::System sys = singleWriter();
  Decoder d(&sys);
  sim::Config cfg = sim::initialConfig(sys);
  StackSequence stacks(1);
  EXPECT_EQ(d.classify(cfg, stacks, 0), ProcClass::Waiting);  // empty stack
  stacks[0].pushBottom(Command::proceed());
  EXPECT_EQ(d.classify(cfg, stacks, 0), ProcClass::NonCommitEnabled);
  stacks[0].pop();
  stacks[0].pushBottom(Command::commit());
  // Not poised at a fence with pending writes yet.
  EXPECT_EQ(d.classify(cfg, stacks, 0), ProcClass::Waiting);
}

}  // namespace
}  // namespace fencetrade::enc
