#include "sim/buffer.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fencetrade::sim {
namespace {

TEST(PsoBufferTest, StartsEmpty) {
  WriteBuffer wb(MemoryModel::PSO);
  EXPECT_TRUE(wb.empty());
  EXPECT_EQ(wb.size(), 0u);
  EXPECT_FALSE(wb.containsReg(0));
  EXPECT_FALSE(wb.forwardValue(0).has_value());
}

TEST(PsoBufferTest, WriteReplacesPendingWriteToSameRegister) {
  // The paper: WB gets (WB - {(R, x')}) ∪ {(R, x)} — no duplicates.
  WriteBuffer wb(MemoryModel::PSO);
  wb.addWrite(5, 10);
  wb.addWrite(5, 20);
  EXPECT_EQ(wb.size(), 1u);
  EXPECT_EQ(wb.forwardValue(5).value(), 20);
}

TEST(PsoBufferTest, AnyRegisterIsCommittable) {
  WriteBuffer wb(MemoryModel::PSO);
  wb.addWrite(3, 1);
  wb.addWrite(7, 2);
  wb.addWrite(1, 3);
  EXPECT_TRUE(wb.canCommitReg(3));
  EXPECT_TRUE(wb.canCommitReg(7));
  EXPECT_TRUE(wb.canCommitReg(1));
  EXPECT_FALSE(wb.canCommitReg(2));
}

TEST(PsoBufferTest, ForcedCommitPicksSmallestRegister) {
  WriteBuffer wb(MemoryModel::PSO);
  wb.addWrite(9, 1);
  wb.addWrite(2, 2);
  wb.addWrite(5, 3);
  EXPECT_EQ(wb.nextForcedReg(), 2);
  EXPECT_EQ(wb.commitReg(2), 2);
  EXPECT_EQ(wb.nextForcedReg(), 5);
}

TEST(PsoBufferTest, CommitRemovesEntry) {
  WriteBuffer wb(MemoryModel::PSO);
  wb.addWrite(4, 44);
  EXPECT_EQ(wb.commitReg(4), 44);
  EXPECT_TRUE(wb.empty());
  EXPECT_THROW(wb.commitReg(4), util::CheckError);
}

TEST(PsoBufferTest, DistinctRegsSorted) {
  WriteBuffer wb(MemoryModel::PSO);
  wb.addWrite(9, 1);
  wb.addWrite(2, 2);
  wb.addWrite(9, 3);
  EXPECT_EQ(wb.distinctRegs(), (std::vector<Reg>{2, 9}));
}

TEST(TsoBufferTest, FifoOrderOnlyFrontCommittable) {
  WriteBuffer wb(MemoryModel::TSO);
  wb.addWrite(5, 1);
  wb.addWrite(3, 2);
  EXPECT_TRUE(wb.canCommitReg(5));
  EXPECT_FALSE(wb.canCommitReg(3));  // not the oldest entry
  EXPECT_EQ(wb.nextForcedReg(), 5);
  EXPECT_EQ(wb.commitReg(5), 1);
  EXPECT_TRUE(wb.canCommitReg(3));
}

TEST(TsoBufferTest, AllowsMultipleWritesToSameRegisterInOrder) {
  WriteBuffer wb(MemoryModel::TSO);
  wb.addWrite(5, 1);
  wb.addWrite(5, 2);
  EXPECT_EQ(wb.size(), 2u);
  // Forwarding returns the newest pending value.
  EXPECT_EQ(wb.forwardValue(5).value(), 2);
  EXPECT_EQ(wb.commitReg(5), 1);  // commits the oldest
  EXPECT_EQ(wb.forwardValue(5).value(), 2);
}

TEST(TsoBufferTest, ForwardingIgnoresOtherRegisters) {
  WriteBuffer wb(MemoryModel::TSO);
  wb.addWrite(1, 10);
  EXPECT_FALSE(wb.forwardValue(2).has_value());
}

TEST(ScBufferTest, AddWriteForbidden) {
  WriteBuffer wb(MemoryModel::SC);
  EXPECT_THROW(wb.addWrite(1, 1), util::CheckError);
}

TEST(BufferHashTest, HashReflectsContent) {
  WriteBuffer a(MemoryModel::PSO), b(MemoryModel::PSO);
  a.addWrite(1, 2);
  b.addWrite(1, 2);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_TRUE(a == b);
  b.addWrite(3, 4);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_FALSE(a == b);
}

TEST(BufferHashTest, TsoHashIsOrderSensitive) {
  WriteBuffer a(MemoryModel::TSO), b(MemoryModel::TSO);
  a.addWrite(1, 1);
  a.addWrite(2, 2);
  b.addWrite(2, 2);
  b.addWrite(1, 1);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BufferTest, NextForcedRegOnEmptyThrows) {
  WriteBuffer wb(MemoryModel::PSO);
  EXPECT_THROW(wb.nextForcedReg(), util::CheckError);
}

}  // namespace
}  // namespace fencetrade::sim
