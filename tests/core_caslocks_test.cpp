#include "core/caslocks.h"

#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/objects.h"
#include "encoding/encoder.h"
#include "sim/explore.h"
#include "util/check.h"
#include "sim/schedule.h"
#include "util/permutation.h"

namespace fencetrade::core {
namespace {

using sim::MemoryModel;

class CasLockMutex
    : public ::testing::TestWithParam<std::tuple<bool, MemoryModel>> {};

INSTANTIATE_TEST_SUITE_P(
    LocksAndModels, CasLockMutex,
    ::testing::Combine(::testing::Bool(),  // true = TTAS, false = TAS
                       ::testing::Values(MemoryModel::SC, MemoryModel::TSO,
                                         MemoryModel::PSO)),
    [](const auto& paramInfo) {
      return std::string(std::get<0>(paramInfo.param) ? "ttas" : "tas") +
             "_" + sim::memoryModelName(std::get<1>(paramInfo.param));
    });

TEST_P(CasLockMutex, ExhaustiveTwoProcesses) {
  const auto& [ttas, model] = GetParam();
  auto os = buildCountSystem(model, 2, ttas ? ttasFactory() : tasFactory());
  auto res = sim::explore(os.sys);
  EXPECT_FALSE(res.mutexViolation);
  EXPECT_FALSE(res.capped());
  std::set<std::vector<sim::Value>> expected{{0, 1}, {1, 0}};
  EXPECT_EQ(res.outcomes, expected);
}

TEST(CasLockTest, ThreeProcessesBoundedPso) {
  auto os = buildCountSystem(MemoryModel::PSO, 3, ttasFactory());
  sim::ExploreOptions opts;
  opts.maxStates = 400'000;
  auto res = sim::explore(os.sys, opts);
  EXPECT_FALSE(res.mutexViolation);
}

TEST(CasLockTest, SequentialOrdering) {
  for (auto factory : {tasFactory(), ttasFactory()}) {
    const int n = 6;
    auto os = buildCountSystem(MemoryModel::PSO, n, factory);
    sim::Config cfg = sim::initialConfig(os.sys);
    util::Rng rng(9);
    auto pi = util::randomPermutation(n, rng);
    sim::runSequential(os.sys, cfg, pi);
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(cfg.procs[pi[k]].retval, k);
    }
  }
}

TEST(CasLockTest, RandomContentionStress) {
  for (auto factory : {tasFactory(), ttasFactory()}) {
    const int n = 4;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      auto os = buildCountSystem(MemoryModel::PSO, n, factory);
      sim::Config cfg = sim::initialConfig(os.sys);
      util::Rng rng(seed);
      auto run = sim::runRandom(os.sys, cfg, rng, 1 << 20);
      ASSERT_TRUE(run.completed) << "seed " << seed;
      std::set<sim::Value> returns;
      for (const auto& ps : cfg.procs) returns.insert(ps.retval);
      EXPECT_EQ(returns.size(), static_cast<std::size_t>(n));
    }
  }
}

TEST(CasLockTest, SoloCostsConstantRegardlessOfN) {
  // The whole point of comparison primitives: O(1) synchronization ops
  // and O(1) RMRs per uncontended passage, at any n — they escape the
  // read/write fence machinery but pay a CAS instead.
  for (int n : {2, 16, 128}) {
    auto os = buildCountSystem(MemoryModel::PSO, n, ttasFactory());
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::Execution exec;
    ASSERT_TRUE(sim::runSolo(os.sys, cfg, 0, &exec));
    auto counts = sim::countSteps(exec, n);
    EXPECT_EQ(counts.casSteps, 1) << "n=" << n;
    EXPECT_LE(counts.rmrsPerProc[0], 4) << "n=" << n;
    EXPECT_EQ(counts.fencesPerProc[0], 2) << "n=" << n;  // release + CS
  }
}

TEST(CasLockTest, TtasSpinsLocallyTasPingPongsTheLine) {
  // Hold the lock with p0 and let TWO waiters spin, alternating steps.
  // TAS: each failed CAS steals the line from the other spinner, so
  // nearly every spin step is remote.  TTAS: both spinners hold the
  // cached value and spin locally.
  auto spinRmrs = [](const LockFactory& factory) {
    auto os = buildCountSystem(MemoryModel::PSO, 3, factory);
    sim::Config cfg = sim::initialConfig(os.sys);
    // p0 acquires (runs until inside the CS).
    while (!sim::inCriticalSection(os.sys, cfg, 0)) {
      sim::execElem(os.sys, cfg, 0, sim::kNoReg);
    }
    // p1 and p2 alternate for 400 elements, spinning on the held lock.
    std::int64_t remote = 0;
    for (int i = 0; i < 400; ++i) {
      auto s = sim::execElem(os.sys, cfg, 1 + (i & 1), sim::kNoReg);
      if (s && s->remote) ++remote;
    }
    return remote;
  };
  const auto tasRemote = spinRmrs(tasFactory());
  const auto ttasRemote = spinRmrs(ttasFactory());
  EXPECT_LE(ttasRemote, 8) << "TTAS must spin in cache";
  EXPECT_GE(tasRemote, 100)
      << "alternating TAS spinners must ping-pong the line";
}

TEST(CasLockTest, EncoderRejectsCasAlgorithms) {
  // The Section-5 construction is defined for read/write programs; the
  // decoder refuses comparison-primitive algorithms explicitly.
  auto os = buildCountSystem(MemoryModel::PSO, 3, tasFactory());
  EXPECT_THROW(enc::Encoder enc(&os.sys), util::CheckError);
}

}  // namespace
}  // namespace fencetrade::core
