#include "check/oracles.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "check/inject.h"
#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "core/recoverable.h"
#include "sim/builder.h"
#include "sim/explore.h"
#include "sim/litmus.h"
#include "sim/machine.h"
#include "sim/schedule.h"
#include "util/rng.h"

namespace fencetrade::check {
namespace {

using sim::MemoryModel;

sim::System petersonTso(MemoryModel m) {
  return core::buildCountSystem(
             m, 2,
             core::petersonTournamentFactory(core::SegmentPolicy::PerProcess,
                                             core::PetersonVariant::TsoFence))
      .sys;
}

TEST(MutexOracleTest, CleanResultHolds) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  const sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_FALSE(res.capped());
  ASSERT_FALSE(res.mutexViolation);
  const PropertyReport rep = checkMutualExclusionResult(sys, res);
  EXPECT_TRUE(rep.applicable);
  EXPECT_TRUE(rep.holds) << rep.detail;
  EXPECT_FALSE(rep.verifiedViolation);
}

TEST(MutexOracleTest, GenuineViolationIsVerifiedByReplay) {
  const sim::System sys = petersonTso(MemoryModel::PSO);
  const sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_TRUE(res.mutexViolation);
  const PropertyReport rep = checkMutualExclusionResult(sys, res);
  EXPECT_FALSE(rep.holds);
  EXPECT_TRUE(rep.verifiedViolation) << rep.detail;
}

TEST(MutexOracleTest, FabricatedViolationIsFlaggedAsHarnessBug) {
  const sim::System sys = petersonTso(MemoryModel::SC);
  sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_FALSE(res.mutexViolation);
  // Forge a violation claim with no replayable witness behind it.
  res.mutexViolation = true;
  const PropertyReport rep = checkMutualExclusionResult(sys, res);
  EXPECT_FALSE(rep.holds);
  EXPECT_FALSE(rep.verifiedViolation)
      << "a non-replaying witness must not count as a verified violation";
}

TEST(MutexOracleTest, StaleWitnessFromOtherSystemFails) {
  // A witness from the violating PSO system must not validate against
  // the (correct) SC build of the same lock.
  const sim::System pso = petersonTso(MemoryModel::PSO);
  const sim::ExploreResult violating = sim::explore(pso, {});
  ASSERT_TRUE(violating.mutexViolation);

  const sim::System sc = petersonTso(MemoryModel::SC);
  sim::ExploreResult forged = sim::explore(sc, {});
  forged.mutexViolation = true;
  forged.witness = violating.witness;
  forged.maxCsOccupancy = violating.maxCsOccupancy;
  const PropertyReport rep = checkMutualExclusionResult(sc, forged);
  EXPECT_FALSE(rep.holds);
  EXPECT_FALSE(rep.verifiedViolation);
}

TEST(DeadlockOracleTest, CompleteLivenessResultHolds) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  const sim::LivenessResult live = sim::checkLiveness(sys, {});
  ASSERT_TRUE(live.complete());
  const PropertyReport rep = checkDeadlockFreedom(live);
  EXPECT_TRUE(rep.applicable);
  EXPECT_TRUE(rep.holds) << rep.detail;
}

TEST(DeadlockOracleTest, CappedLivenessIsNotApplicable) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  sim::LivenessOptions opts;
  opts.maxStates = 4;
  const sim::LivenessResult live = sim::checkLiveness(sys, opts);
  ASSERT_FALSE(live.complete());
  const PropertyReport rep = checkDeadlockFreedom(live);
  EXPECT_FALSE(rep.applicable);
  EXPECT_TRUE(rep.holds);
}

TEST(OutcomeOracleTest, EqualSetsHold) {
  const std::set<std::vector<sim::Value>> a{{0, 1}, {1, 0}};
  std::set<std::vector<sim::Value>> b = a;
  const PropertyReport rep = checkOutcomeSetEquality(
      {{"seq", &a}, {"par", &b}});
  EXPECT_TRUE(rep.holds) << rep.detail;
}

TEST(OutcomeOracleTest, DisagreementNamesTheEngines) {
  const std::set<std::vector<sim::Value>> a{{0, 1}, {1, 0}};
  const std::set<std::vector<sim::Value>> b{{0, 1}};
  const PropertyReport rep = checkOutcomeSetEquality(
      {{"seq", &a}, {"par", &b}});
  EXPECT_FALSE(rep.holds);
  EXPECT_NE(rep.detail.find("seq"), std::string::npos);
  EXPECT_NE(rep.detail.find("par"), std::string::npos);
}

TEST(TelemetryOracleTest, RealEngineTelemetryIsConsistent) {
  const sim::System sys = sim::litmusMP(MemoryModel::PSO, false);
  for (int workers : {1, 2, 4}) {
    sim::ExploreOptions opts;
    opts.workers = workers;
    const sim::ExploreResult res = sim::explore(sys, opts);
    const PropertyReport rep =
        checkTelemetryConsistency(res.telemetry, res.statesVisited);
    EXPECT_TRUE(rep.holds) << "workers=" << workers << ": " << rep.detail;
  }
}

TEST(TelemetryOracleTest, CorruptedWorkerSumsAreCaught) {
  const sim::System sys = sim::litmusMP(MemoryModel::PSO, false);
  sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_FALSE(res.telemetry.workers.empty());
  res.telemetry.workers[0].statesAdmitted += 1;
  const PropertyReport rep =
      checkTelemetryConsistency(res.telemetry, res.statesVisited);
  EXPECT_FALSE(rep.holds);
}

TEST(AccountingOracleTest, CompletedExecutionsAreConsistentAcrossModels) {
  for (MemoryModel m :
       {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
    const sim::System sys =
        core::buildCountSystem(m, 2, core::bakeryFactory()).sys;
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(11);
    const sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
    ASSERT_TRUE(run.completed);
    const PropertyReport rep =
        checkAccounting(sys, run.exec, sys.n(), run.completed);
    EXPECT_TRUE(rep.holds)
        << "model " << static_cast<int>(m) << ": " << rep.detail;
  }
}

TEST(AccountingOracleTest, TamperedStepIsCaught) {
  const sim::System sys = sim::litmusSB(MemoryModel::PSO, true);
  sim::Config cfg = sim::initialConfig(sys);
  util::Rng rng(3);
  sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
  ASSERT_TRUE(run.completed);
  ASSERT_FALSE(run.exec.empty());
  // remote must equal remoteDsm && remoteCc; break that invariant.
  run.exec.front().remote = !run.exec.front().remote;
  const PropertyReport rep =
      checkAccounting(sys, run.exec, sys.n(), run.completed);
  EXPECT_FALSE(rep.holds);
}

TEST(BoundedBypassOracleTest, BakeryIsFcfsOnRandomSchedules) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    const sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
    ASSERT_TRUE(run.completed);
    const PropertyReport rep = checkBoundedBypass(sys, run.schedule, 0);
    EXPECT_TRUE(rep.applicable);
    EXPECT_TRUE(rep.holds) << "seed " << seed << ": " << rep.detail;
  }
}

TEST(BoundedBypassOracleTest, NotApplicableWithoutDoorwayMarkers) {
  const sim::System sys = sim::litmusMP(MemoryModel::PSO, false);
  sim::Config cfg = sim::initialConfig(sys);
  util::Rng rng(1);
  const sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
  const PropertyReport rep = checkBoundedBypass(sys, run.schedule, 0);
  EXPECT_FALSE(rep.applicable);
  EXPECT_TRUE(rep.holds);
}

// ---------------------------------------------------------------------------
// RME: the broken-recovery canary, crash accounting invariants, and the
// per-architecture RMR split.
// ---------------------------------------------------------------------------

sim::System recoverableSys(const core::LockFactory& factory, MemoryModel m,
                           int crashBudget,
                           sim::Arch arch = sim::Arch::Combined) {
  sim::System sys = core::buildCountSystem(m, 2, factory).sys;
  sys.crashBudget = crashBudget;
  sys.arch = arch;
  return sys;
}

TEST(RecoverableOracleTest, BrokenRecoveryViolationIsVerifiedByReplay) {
  // The misplaced recovery section only misbehaves once a crash is
  // allowed; the oracle must re-derive the violation from the witness,
  // crash moves included, not trust the engine's claim.
  const sim::System sys =
      recoverableSys(core::brokenRecoverableTasFactory(), MemoryModel::SC, 1);
  const sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_TRUE(res.mutexViolation);
  const PropertyReport rep = checkMutualExclusionResult(sys, res);
  EXPECT_FALSE(rep.holds);
  EXPECT_TRUE(rep.verifiedViolation) << rep.detail;
  EXPECT_GE(maxOccupancyOnReplay(sys, res.witness), 2);
  bool crashed = false;
  for (const auto& [p, r] : res.witness) {
    if (r == sim::kCrashReg) crashed = true;
  }
  EXPECT_TRUE(crashed) << "the witness must actually crash somebody";
}

TEST(RecoverableOracleTest, CorrectRecoverableLockHoldsUnderCrashes) {
  const sim::System sys =
      recoverableSys(core::recoverableTasFactory(), MemoryModel::PSO, 1);
  const sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_FALSE(res.capped());
  ASSERT_FALSE(res.mutexViolation);
  const PropertyReport rep = checkMutualExclusionResult(sys, res);
  EXPECT_TRUE(rep.holds) << rep.detail;
}

/// A completed reorder-bounded run on `sys` whose execution contains at
/// least one crash step (found by scanning seeds deterministically).
sim::ScheduleRunResult crashRun(const sim::System& sys) {
  for (std::uint64_t seed = 1; seed <= 2000; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    sim::ReorderBoundOptions rbo;
    rbo.crashProb = 0.25;
    sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng, rbo);
    if (!run.completed) continue;
    for (const sim::Step& s : run.exec) {
      if (s.kind == sim::StepKind::Crash) return run;
    }
  }
  ADD_FAILURE() << "no seed produced a completed run with a crash";
  return {};
}

TEST(AccountingOracleTest, CrashStepsAreLocalAndBudgetBounded) {
  const sim::System sys =
      recoverableSys(core::recoverableTasFactory(), MemoryModel::PSO, 1);
  const sim::ScheduleRunResult run = crashRun(sys);
  ASSERT_TRUE(run.completed);
  EXPECT_TRUE(checkAccounting(sys, run.exec, sys.n(), run.completed).holds);

  // A crash step carrying any remote flag is a harness bug.
  sim::Execution tampered = run.exec;
  for (sim::Step& s : tampered) {
    if (s.kind == sim::StepKind::Crash) {
      s.remote = true;
      break;
    }
  }
  EXPECT_FALSE(checkAccounting(sys, tampered, sys.n(), run.completed).holds);

  // The same execution is over budget against a failure-free system.
  sim::System zero = sys;
  zero.crashBudget = 0;
  EXPECT_FALSE(checkAccounting(zero, run.exec, zero.n(), run.completed).holds);
}

TEST(AccountingOracleTest, SelectedRemoteMustFollowTheArch) {
  for (sim::Arch arch : {sim::Arch::CC, sim::Arch::DSM}) {
    const sim::System sys = recoverableSys(core::recoverableTasFactory(),
                                           MemoryModel::PSO, 1, arch);
    sim::Config cfg = sim::initialConfig(sys);
    sim::Execution exec = sim::runSequential(sys, cfg, {0, 1});
    EXPECT_TRUE(checkAccounting(sys, exec, sys.n(), true).holds)
        << sim::archName(arch);

    // Flip `remote` on a step where the two accountings disagree: the
    // oracle must notice the selected accounting was not honoured.
    bool flipped = false;
    for (sim::Step& s : exec) {
      if (s.remoteDsm != s.remoteCc) {
        s.remote = !s.remote;
        flipped = true;
        break;
      }
    }
    ASSERT_TRUE(flipped)
        << "rtas passage no longer separates the accountings";
    EXPECT_FALSE(checkAccounting(sys, exec, sys.n(), true).holds)
        << sim::archName(arch);
  }
}

TEST(ArchSeparationOracleTest, RtasPassageSeparatesCcFromDsm) {
  // Hand-checked: one uncontended rtas passage per process costs 5 DSM
  // RMRs (read, cas, release write, plus the second process's) but only
  // 4 CC RMRs (the release write hits the now-cached line), so the
  // two-process sequential passage lands at dsm=10, cc=8.
  const sim::System sys =
      recoverableSys(core::recoverableTasFactory(), MemoryModel::PSO, 0);
  sim::Config cfg = sim::initialConfig(sys);
  const sim::Execution exec = sim::runSequential(sys, cfg, {0, 1});
  const sim::StepCounts counts = sim::countSteps(exec, sys.n());
  EXPECT_EQ(counts.rmrsDsm, 10);
  EXPECT_EQ(counts.rmrsCc, 8);
  const PropertyReport rep = checkArchSeparation(exec);
  EXPECT_TRUE(rep.applicable);
  EXPECT_TRUE(rep.holds) << rep.detail;
  EXPECT_NE(rep.detail.find("dsm=10"), std::string::npos) << rep.detail;
  EXPECT_NE(rep.detail.find("cc=8"), std::string::npos) << rep.detail;
}

TEST(ArchSeparationOracleTest, AccessFreeTraceShowsNoSeparation) {
  sim::System sys;
  sys.model = MemoryModel::SC;
  for (int p = 0; p < 2; ++p) {
    sim::ProgramBuilder b("idle#" + std::to_string(p));
    b.ret(b.imm(0));
    sys.programs.push_back(b.build());
  }
  sim::Config cfg = sim::initialConfig(sys);
  const sim::Execution exec = sim::runSequential(sys, cfg, {0, 1});
  const PropertyReport rep = checkArchSeparation(exec);
  EXPECT_FALSE(rep.holds);
  EXPECT_NE(rep.detail.find("dsm=0"), std::string::npos) << rep.detail;
  EXPECT_NE(rep.detail.find("cc=0"), std::string::npos) << rep.detail;
}

TEST(ReplayOccupancyTest, ViolationWitnessReachesOccupancyTwo) {
  sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  ASSERT_GT(stripFence(sys, 0), 0);
  const sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_TRUE(res.mutexViolation);
  EXPECT_GE(maxOccupancyOnReplay(sys, res.witness), 2);
}

}  // namespace
}  // namespace fencetrade::check
