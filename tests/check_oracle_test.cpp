#include "check/oracles.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "check/inject.h"
#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/explore.h"
#include "sim/litmus.h"
#include "sim/schedule.h"
#include "util/rng.h"

namespace fencetrade::check {
namespace {

using sim::MemoryModel;

sim::System petersonTso(MemoryModel m) {
  return core::buildCountSystem(
             m, 2,
             core::petersonTournamentFactory(core::SegmentPolicy::PerProcess,
                                             core::PetersonVariant::TsoFence))
      .sys;
}

TEST(MutexOracleTest, CleanResultHolds) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  const sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_FALSE(res.capped());
  ASSERT_FALSE(res.mutexViolation);
  const PropertyReport rep = checkMutualExclusionResult(sys, res);
  EXPECT_TRUE(rep.applicable);
  EXPECT_TRUE(rep.holds) << rep.detail;
  EXPECT_FALSE(rep.verifiedViolation);
}

TEST(MutexOracleTest, GenuineViolationIsVerifiedByReplay) {
  const sim::System sys = petersonTso(MemoryModel::PSO);
  const sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_TRUE(res.mutexViolation);
  const PropertyReport rep = checkMutualExclusionResult(sys, res);
  EXPECT_FALSE(rep.holds);
  EXPECT_TRUE(rep.verifiedViolation) << rep.detail;
}

TEST(MutexOracleTest, FabricatedViolationIsFlaggedAsHarnessBug) {
  const sim::System sys = petersonTso(MemoryModel::SC);
  sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_FALSE(res.mutexViolation);
  // Forge a violation claim with no replayable witness behind it.
  res.mutexViolation = true;
  const PropertyReport rep = checkMutualExclusionResult(sys, res);
  EXPECT_FALSE(rep.holds);
  EXPECT_FALSE(rep.verifiedViolation)
      << "a non-replaying witness must not count as a verified violation";
}

TEST(MutexOracleTest, StaleWitnessFromOtherSystemFails) {
  // A witness from the violating PSO system must not validate against
  // the (correct) SC build of the same lock.
  const sim::System pso = petersonTso(MemoryModel::PSO);
  const sim::ExploreResult violating = sim::explore(pso, {});
  ASSERT_TRUE(violating.mutexViolation);

  const sim::System sc = petersonTso(MemoryModel::SC);
  sim::ExploreResult forged = sim::explore(sc, {});
  forged.mutexViolation = true;
  forged.witness = violating.witness;
  forged.maxCsOccupancy = violating.maxCsOccupancy;
  const PropertyReport rep = checkMutualExclusionResult(sc, forged);
  EXPECT_FALSE(rep.holds);
  EXPECT_FALSE(rep.verifiedViolation);
}

TEST(DeadlockOracleTest, CompleteLivenessResultHolds) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  const sim::LivenessResult live = sim::checkLiveness(sys, {});
  ASSERT_TRUE(live.complete());
  const PropertyReport rep = checkDeadlockFreedom(live);
  EXPECT_TRUE(rep.applicable);
  EXPECT_TRUE(rep.holds) << rep.detail;
}

TEST(DeadlockOracleTest, CappedLivenessIsNotApplicable) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  sim::LivenessOptions opts;
  opts.maxStates = 4;
  const sim::LivenessResult live = sim::checkLiveness(sys, opts);
  ASSERT_FALSE(live.complete());
  const PropertyReport rep = checkDeadlockFreedom(live);
  EXPECT_FALSE(rep.applicable);
  EXPECT_TRUE(rep.holds);
}

TEST(OutcomeOracleTest, EqualSetsHold) {
  const std::set<std::vector<sim::Value>> a{{0, 1}, {1, 0}};
  std::set<std::vector<sim::Value>> b = a;
  const PropertyReport rep = checkOutcomeSetEquality(
      {{"seq", &a}, {"par", &b}});
  EXPECT_TRUE(rep.holds) << rep.detail;
}

TEST(OutcomeOracleTest, DisagreementNamesTheEngines) {
  const std::set<std::vector<sim::Value>> a{{0, 1}, {1, 0}};
  const std::set<std::vector<sim::Value>> b{{0, 1}};
  const PropertyReport rep = checkOutcomeSetEquality(
      {{"seq", &a}, {"par", &b}});
  EXPECT_FALSE(rep.holds);
  EXPECT_NE(rep.detail.find("seq"), std::string::npos);
  EXPECT_NE(rep.detail.find("par"), std::string::npos);
}

TEST(TelemetryOracleTest, RealEngineTelemetryIsConsistent) {
  const sim::System sys = sim::litmusMP(MemoryModel::PSO, false);
  for (int workers : {1, 2, 4}) {
    sim::ExploreOptions opts;
    opts.workers = workers;
    const sim::ExploreResult res = sim::explore(sys, opts);
    const PropertyReport rep =
        checkTelemetryConsistency(res.telemetry, res.statesVisited);
    EXPECT_TRUE(rep.holds) << "workers=" << workers << ": " << rep.detail;
  }
}

TEST(TelemetryOracleTest, CorruptedWorkerSumsAreCaught) {
  const sim::System sys = sim::litmusMP(MemoryModel::PSO, false);
  sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_FALSE(res.telemetry.workers.empty());
  res.telemetry.workers[0].statesAdmitted += 1;
  const PropertyReport rep =
      checkTelemetryConsistency(res.telemetry, res.statesVisited);
  EXPECT_FALSE(rep.holds);
}

TEST(AccountingOracleTest, CompletedExecutionsAreConsistentAcrossModels) {
  for (MemoryModel m :
       {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
    const sim::System sys =
        core::buildCountSystem(m, 2, core::bakeryFactory()).sys;
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(11);
    const sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
    ASSERT_TRUE(run.completed);
    const PropertyReport rep =
        checkAccounting(sys, run.exec, sys.n(), run.completed);
    EXPECT_TRUE(rep.holds)
        << "model " << static_cast<int>(m) << ": " << rep.detail;
  }
}

TEST(AccountingOracleTest, TamperedStepIsCaught) {
  const sim::System sys = sim::litmusSB(MemoryModel::PSO, true);
  sim::Config cfg = sim::initialConfig(sys);
  util::Rng rng(3);
  sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
  ASSERT_TRUE(run.completed);
  ASSERT_FALSE(run.exec.empty());
  // remote must equal remoteDsm && remoteCc; break that invariant.
  run.exec.front().remote = !run.exec.front().remote;
  const PropertyReport rep =
      checkAccounting(sys, run.exec, sys.n(), run.completed);
  EXPECT_FALSE(rep.holds);
}

TEST(BoundedBypassOracleTest, BakeryIsFcfsOnRandomSchedules) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    const sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
    ASSERT_TRUE(run.completed);
    const PropertyReport rep = checkBoundedBypass(sys, run.schedule, 0);
    EXPECT_TRUE(rep.applicable);
    EXPECT_TRUE(rep.holds) << "seed " << seed << ": " << rep.detail;
  }
}

TEST(BoundedBypassOracleTest, NotApplicableWithoutDoorwayMarkers) {
  const sim::System sys = sim::litmusMP(MemoryModel::PSO, false);
  sim::Config cfg = sim::initialConfig(sys);
  util::Rng rng(1);
  const sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
  const PropertyReport rep = checkBoundedBypass(sys, run.schedule, 0);
  EXPECT_FALSE(rep.applicable);
  EXPECT_TRUE(rep.holds);
}

TEST(ReplayOccupancyTest, ViolationWitnessReachesOccupancyTwo) {
  sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  ASSERT_GT(stripFence(sys, 0), 0);
  const sim::ExploreResult res = sim::explore(sys, {});
  ASSERT_TRUE(res.mutexViolation);
  EXPECT_GE(maxOccupancyOnReplay(sys, res.witness), 2);
}

}  // namespace
}  // namespace fencetrade::check
