#include "native/cas_locks.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "native/lock.h"
#include "native/objects.h"
#include "util/check.h"

namespace fencetrade::native {
namespace {

template <typename Lock>
void mutualExclusionStress() {
  constexpr int kThreads = 4;
  constexpr int kIters = 3000;
  Lock lock(kThreads);
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard<Lock> g(lock, t);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(NativeCasLockTest, TasMutualExclusion) {
  mutualExclusionStress<TasLock>();
}

TEST(NativeCasLockTest, TtasMutualExclusion) {
  mutualExclusionStress<TtasLock>();
}

TEST(NativeCasLockTest, UncontendedCostsOneRmwEach) {
  TasLock tas(2);
  resetCasOpCount();
  tas.lock(0);
  tas.unlock(0);
  EXPECT_EQ(casOpCount(), 1u);

  TtasLock ttas(2);
  resetCasOpCount();
  ttas.lock(1);
  ttas.unlock(1);
  EXPECT_EQ(casOpCount(), 1u);
}

TEST(NativeCasLockTest, WorksWithLockedObjects) {
  LockedCounter<TtasLock> counter(4);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(counter.fetchAdd(i % 4), i);
  }
  LockedQueue<TasLock> queue(2);
  EXPECT_EQ(queue.enqueue(0, 42), 0);
  EXPECT_EQ(queue.dequeue(1).value(), 42);
}

TEST(NativeCasLockTest, BadParametersRejected) {
  EXPECT_THROW(TasLock bad(0), util::CheckError);
  TasLock lock(2);
  EXPECT_THROW(lock.lock(2), util::CheckError);
}

}  // namespace
}  // namespace fencetrade::native
