#include "native/objects.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "native/bakery_lock.h"
#include "native/gt_lock.h"

namespace fencetrade::native {
namespace {

TEST(LockedCounterTest, SequentialFetchAddReturnsOldValues) {
  LockedCounter<BakeryLock> counter(4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(counter.fetchAdd(i % 4), i);
  }
  EXPECT_EQ(counter.read(0), 10);
}

TEST(LockedCounterTest, FetchAddWithDelta) {
  LockedCounter<BakeryLock> counter(2);
  EXPECT_EQ(counter.fetchAdd(0, 5), 0);
  EXPECT_EQ(counter.fetchAdd(1, 3), 5);
  EXPECT_EQ(counter.read(0), 8);
}

TEST(LockedCounterTest, ConcurrentFetchAddIsAnOrderingAlgorithm) {
  // The Count property (Definition 4.1): every value in [0, total) is
  // returned exactly once.
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  LockedCounter<GeneralizedTournamentLock> counter(kThreads, 2);

  std::vector<std::vector<std::int64_t>> returns(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        returns[t].push_back(counter.fetchAdd(t));
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::int64_t> all;
  for (const auto& v : returns) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), kThreads * kIters - 1);
}

TEST(LockedQueueTest, FifoOrderSequential) {
  LockedQueue<BakeryLock> q(2);
  EXPECT_EQ(q.enqueue(0, 100), 0);
  EXPECT_EQ(q.enqueue(1, 200), 1);
  EXPECT_EQ(q.enqueue(0, 300), 2);
  EXPECT_EQ(q.dequeue(1).value(), 100);
  EXPECT_EQ(q.dequeue(0).value(), 200);
  EXPECT_EQ(q.dequeue(1).value(), 300);
  EXPECT_FALSE(q.dequeue(0).has_value());
}

TEST(LockedQueueTest, EnqueuePositionsArePermutation) {
  constexpr int kThreads = 3;
  constexpr int kIters = 300;
  LockedQueue<BakeryLock> q(kThreads);
  std::vector<std::set<std::int64_t>> positions(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        positions[t].insert(q.enqueue(t, t * kIters + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::int64_t> all;
  for (const auto& s : positions) all.insert(s.begin(), s.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kIters);
}

TEST(LockedQueueTest, ProducerConsumerDrains) {
  LockedQueue<BakeryLock> q(2);
  constexpr int kItems = 2000;
  std::vector<std::int64_t> received;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.enqueue(0, i);
  });
  std::thread consumer([&] {
    while (received.size() < kItems) {
      if (auto v = q.dequeue(1)) received.push_back(*v);
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  // FIFO: the consumer sees 0, 1, 2, ... in order.
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

}  // namespace
}  // namespace fencetrade::native
