#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fencetrade::util {
namespace {

TEST(KeyArenaTest, InternReturnsStableEqualCopy) {
  KeyArena arena;
  std::string original = "hello, arena";
  std::string_view v = arena.intern(original);
  // Mutating (and even destroying) the source must not affect the copy.
  original.assign(original.size(), 'x');
  original.clear();
  EXPECT_EQ(v, "hello, arena");
  EXPECT_EQ(arena.bytes(), 12u);
}

TEST(KeyArenaTest, ViewsStayValidAcrossManyInterns) {
  // Growing past multiple 64 KiB chunks must never move earlier keys —
  // the visited sets hold views for the whole exploration.
  KeyArena arena;
  std::vector<std::string_view> views;
  std::vector<std::string> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back("key-" + std::to_string(i) +
                   std::string(static_cast<std::size_t>(i % 97), 'p'));
  }
  std::size_t total = 0;
  for (const std::string& k : keys) {
    views.push_back(arena.intern(k));
    total += k.size();
  }
  EXPECT_EQ(arena.bytes(), total);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(views[i], keys[i]) << "key " << i << " moved or corrupted";
  }
}

TEST(KeyArenaTest, EmptyKeyIsInternable) {
  KeyArena arena;
  std::string_view v = arena.intern("");
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(arena.bytes(), 0u);
}

TEST(KeyArenaTest, OversizedKeyGetsDedicatedStorage) {
  KeyArena arena;
  const std::string big(std::size_t{1} << 17, 'b');  // 128 KiB > chunk
  const std::string small = "after-the-big-one";
  std::string_view bigView = arena.intern(big);
  std::string_view smallView = arena.intern(small);
  EXPECT_EQ(bigView, big);
  EXPECT_EQ(smallView, small);
  EXPECT_EQ(arena.bytes(), big.size() + small.size());
}

TEST(KeyArenaTest, ClearResetsAccountingAndAllowsReuse) {
  KeyArena arena;
  for (int i = 0; i < 1000; ++i) {
    arena.intern("some reasonably long state key #" + std::to_string(i));
  }
  EXPECT_GT(arena.bytes(), 0u);
  arena.clear();
  EXPECT_EQ(arena.bytes(), 0u);
  // Reuse after clear: fresh interns are intact and accounted from zero.
  std::string_view v = arena.intern("fresh");
  EXPECT_EQ(v, "fresh");
  EXPECT_EQ(arena.bytes(), 5u);
}

TEST(KeyArenaTest, ClearAfterOversizedFirstKeyStaysInBounds) {
  // Regression guard: when the *first* chunk is an oversized dedicated
  // chunk, clear() keeps it for reuse — subsequent interns must respect
  // that chunk's real capacity, not assume the default chunk size.
  KeyArena arena;
  const std::string big(std::size_t{1} << 17, 'z');
  arena.intern(big);
  arena.clear();
  std::vector<std::string_view> views;
  std::vector<std::string> keys;
  for (int i = 0; i < 3000; ++i) {
    keys.push_back("post-clear-key-" + std::to_string(i) +
                   std::string(static_cast<std::size_t>(i % 113), 'q'));
    views.push_back(arena.intern(keys.back()));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(views[i], keys[i]);
  }
}

TEST(KeyArenaTest, ClearAfterTinyFirstChunkStillReusesIt) {
  KeyArena arena;
  arena.intern("a");
  arena.intern("b");
  arena.clear();
  std::string_view v1 = arena.intern("cc");
  std::string_view v2 = arena.intern("dd");
  EXPECT_EQ(v1, "cc");
  EXPECT_EQ(v2, "dd");
  EXPECT_EQ(arena.bytes(), 4u);
}

TEST(KeyArenaTest, BinaryKeysWithEmbeddedNulSurvive) {
  // State keys are raw serialized bytes, not C strings.
  KeyArena arena;
  std::string key("ab\0cd\0\0e", 8);
  std::string_view v = arena.intern(key);
  ASSERT_EQ(v.size(), 8u);
  EXPECT_EQ(std::string(v), key);
}

}  // namespace
}  // namespace fencetrade::util
