#include "util/sharded_set.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace fencetrade::util {
namespace {

TEST(ShardedStateSetTest, InsertReportsFirstInsertionOnly) {
  ShardedStateSet set;
  EXPECT_TRUE(set.insert("alpha"));
  EXPECT_FALSE(set.insert("alpha"));
  EXPECT_TRUE(set.insert("beta"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains("alpha"));
  EXPECT_TRUE(set.contains("beta"));
  EXPECT_FALSE(set.contains("gamma"));
}

TEST(ShardedStateSetTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedStateSet(1).shardCount(), 1);
  EXPECT_EQ(ShardedStateSet(2).shardCount(), 2);
  EXPECT_EQ(ShardedStateSet(3).shardCount(), 4);
  EXPECT_EQ(ShardedStateSet(64).shardCount(), 64);
  EXPECT_EQ(ShardedStateSet(65).shardCount(), 128);
}

TEST(ShardedStateSetTest, KeyBytesTracksInternedKeys) {
  ShardedStateSet set;
  set.insert("1234");
  set.insert("567890");
  set.insert("1234");  // duplicate interns nothing
  EXPECT_EQ(set.keyBytes(), 10u);
}

TEST(ShardedStateSetTest, ConstantHashStillKeepsDistinctKeys) {
  // The soundness property the whole design exists for: with every key
  // hashing identically (all collide, single shard), distinct states
  // must still be distinguished by their full bytes.
  ShardedStateSet set(8, [](std::string_view) -> std::uint64_t {
    return 42;
  });
  const int kKeys = 500;
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(set.insert("state-" + std::to_string(i)));
  }
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_FALSE(set.insert("state-" + std::to_string(i)));
    EXPECT_TRUE(set.contains("state-" + std::to_string(i)));
  }
  EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kKeys));
}

TEST(ShardedStateSetTest, CrossShardDedupUnderThreads) {
  // Every thread races to insert the same key universe; each key must
  // be won exactly once in total, across all shards and threads.
  ShardedStateSet set(16);
  const int kThreads = 8;
  const int kKeys = 4000;
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&set, &wins, t] {
      // Interleaved per-thread starting points so threads contend on
      // the same keys at roughly the same time.
      for (int i = 0; i < kKeys; ++i) {
        const int k = (i + t * (kKeys / kThreads)) % kKeys;
        if (set.insert("key:" + std::to_string(k))) {
          wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(wins.load(), static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(set.contains("key:" + std::to_string(i)));
  }
}

TEST(ShardedStateSetTest, ConcurrentInsertWithForcedCollisions) {
  // Threads + constant hash: the single contended shard must stay
  // consistent (this is the TSan-visible path the parallel explorer
  // exercises when state keys hash unluckily).
  ShardedStateSet set(4, [](std::string_view) -> std::uint64_t {
    return 7;
  });
  const int kThreads = 4;
  const int kKeys = 800;
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&set, &wins] {
      for (int i = 0; i < kKeys; ++i) {
        if (set.insert("collide-" + std::to_string(i))) {
          wins.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(wins.load(), static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(set.size(), static_cast<std::uint64_t>(kKeys));
}

TEST(ShardedStateSetTest, BinaryKeysWithEmbeddedNul) {
  ShardedStateSet set;
  const std::string a("k\0a", 3);
  const std::string b("k\0b", 3);
  const std::string shortK("k", 1);
  EXPECT_TRUE(set.insert(a));
  EXPECT_TRUE(set.insert(b));
  EXPECT_TRUE(set.insert(shortK));
  EXPECT_FALSE(set.insert(a));
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace fencetrade::util
