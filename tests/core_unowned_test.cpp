// Segment-policy behaviour: correctness is layout-independent, RMR
// accounting is not.
#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/explore.h"
#include "sim/schedule.h"
#include "util/check.h"

namespace fencetrade::core {
namespace {

using sim::MemoryModel;

TEST(UnownedLayoutTest, MutexHoldsForEveryLockUnderPso) {
  const std::pair<const char*, LockFactory> locks[] = {
      {"bakery", bakeryFactory(BakeryVariant::Lamport,
                               SegmentPolicy::Unowned)},
      {"gt2",
       gtFactory(2, BakeryVariant::Lamport, SegmentPolicy::Unowned)},
      {"peterson",
       petersonTournamentFactory(SegmentPolicy::Unowned)},
  };
  for (const auto& [name, factory] : locks) {
    auto os = buildCountSystem(MemoryModel::PSO, 2, factory);
    auto res = sim::explore(os.sys);
    EXPECT_FALSE(res.mutexViolation) << name;
    EXPECT_FALSE(res.capped()) << name;
    std::set<std::vector<sim::Value>> expected{{0, 1}, {1, 0}};
    EXPECT_EQ(res.outcomes, expected) << name;
  }
}

TEST(UnownedLayoutTest, SequentialOrderingUnaffectedByLayout) {
  const int n = 6;
  for (auto policy :
       {SegmentPolicy::PerProcess, SegmentPolicy::Unowned}) {
    auto os = buildCountSystem(
        MemoryModel::PSO, n,
        bakeryFactory(BakeryVariant::Lamport, policy));
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::runSequential(os.sys, cfg, {5, 0, 3, 1, 4, 2});
    const std::vector<sim::ProcId> order{5, 0, 3, 1, 4, 2};
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(cfg.procs[order[k]].retval, k);
    }
  }
}

TEST(UnownedLayoutTest, UnownedLayoutHasMoreDsmRemoteSteps) {
  // With no register in any process's segment, every first access is
  // DSM-remote; the per-process layout keeps own-slot accesses free.
  const int n = 8;
  auto measure = [&](SegmentPolicy policy) {
    auto os = buildCountSystem(
        MemoryModel::PSO, n,
        bakeryFactory(BakeryVariant::Lamport, policy));
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::Execution exec;
    FT_CHECK(sim::runSolo(os.sys, cfg, 0, &exec));
    return sim::countSteps(exec, n);
  };
  const auto perProc = measure(SegmentPolicy::PerProcess);
  const auto unowned = measure(SegmentPolicy::Unowned);
  EXPECT_GT(unowned.rmrsDsm, perProc.rmrsDsm);
  // CC-only accounting does not care about segments.
  EXPECT_EQ(unowned.rmrsCc, perProc.rmrsCc);
  // Combined: unowned >= per-process (fewer free segment accesses).
  EXPECT_GE(unowned.rmrs, perProc.rmrs);
}

TEST(UnownedLayoutTest, GtStructureIndependentOfPolicy) {
  sim::MemoryLayout a, b;
  GeneralizedTournamentLock perProc(a, 27, 3, BakeryVariant::Lamport,
                                    SegmentPolicy::PerProcess);
  GeneralizedTournamentLock unowned(b, 27, 3, BakeryVariant::Lamport,
                                    SegmentPolicy::Unowned);
  EXPECT_EQ(perProc.height(), unowned.height());
  EXPECT_EQ(perProc.branching(), unowned.branching());
  EXPECT_EQ(perProc.fencesPerPassage(), unowned.fencesPerPassage());
  EXPECT_EQ(a.count(), b.count());
  // All unowned registers really have no owner.
  for (sim::Reg r = 0; r < b.count(); ++r) {
    EXPECT_EQ(b.owner(r), sim::kNoOwner);
  }
}

}  // namespace
}  // namespace fencetrade::core
