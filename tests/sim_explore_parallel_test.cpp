// Differential verification of the parallel exploration engine against
// the sequential DFS oracle: identical outcome sets, state counts and
// invariant verdicts for every litmus system × memory model and for the
// GT_f lock family, plus witness-replay checks that a reported
// mutual-exclusion violation is backed by a genuine replayable schedule
// (guarding against stale/truncated witnesses from the parallel merge).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/builder.h"
#include "sim/explore.h"
#include "sim/explore_parallel.h"
#include "sim/litmus.h"

namespace fencetrade::sim {
namespace {

// Sanitizer builds run the heavy n=3 lock explorations with a reduced
// worker sweep so the TSan/ASan CI jobs stay within time budget.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

void expectSameResult(const ExploreResult& seq, const ExploreResult& par,
                      const std::string& what) {
  ASSERT_FALSE(seq.capped()) << what;
  ASSERT_FALSE(par.capped()) << what;
  EXPECT_EQ(par.outcomes, seq.outcomes) << what;
  EXPECT_EQ(par.statesVisited, seq.statesVisited) << what;
  EXPECT_EQ(par.mutexViolation, seq.mutexViolation) << what;
  EXPECT_EQ(par.maxCsOccupancy, seq.maxCsOccupancy) << what;
}

TEST(ParallelDiffTest, LitmusSystemsAllModelsAllWorkerCounts) {
  struct Case {
    const char* name;
    System (*make)(MemoryModel);
  };
  const Case cases[] = {
      {"SB", [](MemoryModel m) { return litmusSB(m, false); }},
      {"SB+fence", [](MemoryModel m) { return litmusSB(m, true); }},
      {"MP", [](MemoryModel m) { return litmusMP(m, false); }},
      {"MP+fence", [](MemoryModel m) { return litmusMP(m, true); }},
      {"CoRR", [](MemoryModel m) { return litmusCoRR(m); }},
      {"WriteBatch", [](MemoryModel m) { return litmusWriteBatch(m); }},
      {"Seqlock", [](MemoryModel m) { return litmusSeqlock(m); }},
  };
  for (MemoryModel m :
       {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
    for (const Case& c : cases) {
      System sys = c.make(m);
      auto seq = explore(sys);
      for (int workers : {2, 4, 8}) {
        ExploreOptions opts;
        opts.workers = workers;
        auto par = explore(sys, opts);
        expectSameResult(seq, par,
                         std::string(c.name) + "/" + memoryModelName(m) +
                             "/w" + std::to_string(workers));
      }
    }
  }
}

TEST(ParallelDiffTest, GtLockFamilySmallN) {
  // GT_f ordering systems under PSO (the model the paper's bound is
  // about): full exploration, engines must agree exactly.
  struct Case {
    int f;
    int n;
  };
  const Case cases[] = {{1, 2}, {2, 2}, {1, 3}, {2, 3}};
  for (const Case& c : cases) {
    auto os = core::buildCountSystem(MemoryModel::PSO, c.n,
                                     core::gtFactory(c.f));
    ExploreOptions opts;
    opts.maxStates = 5'000'000;
    auto seq = explore(os.sys, opts);

    std::vector<int> sweep{2, 4, 8};
    if (kSanitized && c.n == 3) sweep = {2};
    for (int workers : sweep) {
      ExploreOptions popts = opts;
      popts.workers = workers;
      auto par = explore(os.sys, popts);
      expectSameResult(seq, par,
                       "GT_" + std::to_string(c.f) + "/n" +
                           std::to_string(c.n) + "/w" +
                           std::to_string(workers));
      EXPECT_FALSE(par.mutexViolation);
    }
  }
}

TEST(ParallelDiffTest, DirectEntryPointMatchesDispatch) {
  // exploreParallel() with workers=1 (one worker thread) must agree
  // with both the dispatcher and the sequential oracle.
  System sys = litmusMP(MemoryModel::PSO, false);
  auto seq = explore(sys);
  ExploreOptions opts;
  opts.workers = 1;
  auto par = exploreParallel(sys, opts);
  expectSameResult(seq, par, "direct/w1");
}

TEST(ParallelDiffTest, LivenessGraphMatchesSequential) {
  struct Case {
    const char* name;
    System sys;
  };
  std::vector<Case> cases;
  cases.push_back({"MP/PSO", litmusMP(MemoryModel::PSO, false)});
  cases.push_back({"SB/TSO", litmusSB(MemoryModel::TSO, false)});
  cases.push_back(
      {"GT2/n2",
       core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys});
  for (const Case& c : cases) {
    auto seq = checkLiveness(c.sys);
    ASSERT_TRUE(seq.complete()) << c.name;
    for (int workers : {2, 4}) {
      LivenessOptions opts;
      opts.workers = workers;
      auto par = checkLiveness(c.sys, opts);
      ASSERT_TRUE(par.complete()) << c.name << "/w" << workers;
      EXPECT_EQ(par.states, seq.states) << c.name << "/w" << workers;
      EXPECT_EQ(par.terminalStates, seq.terminalStates)
          << c.name << "/w" << workers;
      EXPECT_EQ(par.allCanTerminate, seq.allCanTerminate)
          << c.name << "/w" << workers;
      EXPECT_EQ(par.stuckStates, seq.stuckStates)
          << c.name << "/w" << workers;
    }
  }
}

// ---------------------------------------------------------------------------
// Witness replay: a reported violation must come with a schedule that,
// replayed step-by-step through execElem, actually reaches a state with
// two processes inside their critical sections.
// ---------------------------------------------------------------------------

System noLockSystem() {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  for (int p = 0; p < 2; ++p) {
    ProgramBuilder b("nolock#" + std::to_string(p));
    LocalId x = b.local("x");
    b.readReg(x, r);
    b.csBegin();
    b.readReg(x, r);
    b.writeReg(r, b.add(b.L(x), b.imm(1)));
    b.fence();
    b.csEnd();
    b.ret(b.L(x));
    sys.programs.push_back(b.build());
  }
  return sys;
}

int replayOccupancy(const System& sys,
                    const std::vector<std::pair<ProcId, Reg>>& witness) {
  Config cfg = initialConfig(sys);
  for (auto [p, r] : witness) {
    EXPECT_TRUE(execElem(sys, cfg, p, r).has_value())
        << "witness step (" << p << ", " << r << ") produced no step";
  }
  int occ = 0;
  for (int p = 0; p < sys.n(); ++p) {
    if (inCriticalSection(sys, cfg, p)) ++occ;
  }
  return occ;
}

TEST(WitnessReplayTest, NoLockSystemAllWorkerCounts) {
  System sys = noLockSystem();
  for (int workers : {1, 2, 4, 8}) {
    ExploreOptions opts;
    opts.workers = workers;
    auto res = explore(sys, opts);
    ASSERT_TRUE(res.mutexViolation) << "workers " << workers;
    ASSERT_FALSE(res.witness.empty()) << "workers " << workers;
    EXPECT_GE(replayOccupancy(sys, res.witness), 2)
        << "workers " << workers;
  }
}

TEST(WitnessReplayTest, BrokenPetersonUnderPso) {
  // The TsoFence Peterson variant is genuinely broken under PSO; both
  // engines must find it and hand back a replayable schedule.
  auto os = core::buildCountSystem(
      MemoryModel::PSO, 2,
      core::petersonTournamentFactory(core::SegmentPolicy::PerProcess,
                                      core::PetersonVariant::TsoFence));
  for (int workers : {1, 4}) {
    ExploreOptions opts;
    opts.workers = workers;
    auto res = explore(os.sys, opts);
    ASSERT_TRUE(res.mutexViolation) << "workers " << workers;
    EXPECT_GE(replayOccupancy(os.sys, res.witness), 2)
        << "workers " << workers;
  }
}

TEST(WitnessReplayTest, ExhaustiveRunWithoutEarlyStopStillReplays) {
  // stopOnViolation=false keeps exploring after the first violation;
  // the recorded witness must stay valid (not truncated by later work).
  System sys = noLockSystem();
  for (int workers : {1, 4}) {
    ExploreOptions opts;
    opts.workers = workers;
    opts.stopOnViolation = false;
    auto res = explore(sys, opts);
    ASSERT_TRUE(res.mutexViolation) << "workers " << workers;
    EXPECT_GE(replayOccupancy(sys, res.witness), 2)
        << "workers " << workers;
  }
}

}  // namespace
}  // namespace fencetrade::sim
