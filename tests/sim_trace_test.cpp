#include "sim/trace.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/schedule.h"

namespace fencetrade::sim {
namespace {

Execution sampleExecution(System& sys) {
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(kNoOwner, "alpha");
  ProgramBuilder b("sample");
  LocalId x = b.local("x");
  b.writeRegImm(a, 5);
  b.fence();
  b.readReg(x, a);
  b.fence();
  b.ret(b.L(x));
  sys.programs.push_back(b.build());
  Config cfg = initialConfig(sys);
  Execution exec;
  runSolo(sys, cfg, 0, &exec);
  return exec;
}

TEST(TraceTest, FormatListsEveryStepNumbered) {
  System sys;
  auto exec = sampleExecution(sys);
  const std::string s = formatExecution(sys.layout, exec);
  EXPECT_NE(s.find("0: p0 write alpha = 5"), std::string::npos);
  EXPECT_NE(s.find("commit alpha = 5"), std::string::npos);
  EXPECT_NE(s.find("fence"), std::string::npos);
  EXPECT_NE(s.find("return 5"), std::string::npos);
  // One line per step.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(s.begin(), s.end(), '\n')),
            exec.size());
}

TEST(TraceTest, SummaryCountsMatch) {
  System sys;
  auto exec = sampleExecution(sys);
  const std::string s = summarizeExecution(exec);
  EXPECT_NE(s.find("1 reads"), std::string::npos);
  EXPECT_NE(s.find("1 writes"), std::string::npos);
  EXPECT_NE(s.find("1 commits"), std::string::npos);
  EXPECT_NE(s.find("2 fences"), std::string::npos);
}

TEST(TraceTest, CsvHasHeaderAndRows) {
  System sys;
  auto exec = sampleExecution(sys);
  const std::string csv = executionToCsv(sys.layout, exec);
  EXPECT_EQ(csv.find("step,proc,kind,"), 0u);
  EXPECT_NE(csv.find("write"), std::string::npos);
  EXPECT_NE(csv.find("alpha"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            exec.size() + 1);  // header + rows
}

TEST(TraceTest, PerProcessTableMentionsEachProc) {
  System sys;
  auto exec = sampleExecution(sys);
  const std::string t = perProcessCostTable(exec, 1);
  EXPECT_NE(t.find("fences"), std::string::npos);
  EXPECT_NE(t.find("RMRs"), std::string::npos);
}

}  // namespace
}  // namespace fencetrade::sim
