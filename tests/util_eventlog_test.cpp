// EventLog: span aggregation and top-level nesting accounting, profile
// reset, flight-recorder dumps (armed/disarmed, FT_CHECK hook,
// multi-threaded), the runtime kill switch, and the crash-safe ledger
// append primitive.  The no-metrics build keeps the same API surface
// as no-ops.
#include "util/eventlog.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/check.h"

namespace fencetrade::util {
namespace {

std::string makeTempDir() {
  char tmpl[] = "/tmp/ft_eventlog_test_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : "/tmp";
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(AppendLineAtomic, AppendsWholeLinesAndToleratesEmptyPath) {
  const std::string dir = makeTempDir();
  const std::string path = dir + "/ledger.ndjson";
  EXPECT_TRUE(appendLineAtomic(path, "{\"run\":1}"));
  EXPECT_TRUE(appendLineAtomic(path, "{\"run\":2}"));
  EXPECT_EQ(readWholeFile(path), "{\"run\":1}\n{\"run\":2}\n");
  // Unwritable path reports failure instead of throwing.
  EXPECT_FALSE(appendLineAtomic(dir + "/no/such/dir/x", "line"));
}

#ifndef FENCETRADE_NO_METRICS

TEST(EventLogTest, SpanAggregationTracksNestingAndStops) {
  EventLog& log = EventLog::instance();
  log.resetProfile();
  {
    ScopedSpan outer("test.outer", "widgets", "bytes");
    {
      ScopedSpan inner("test.inner");
      inner.args(3, 0);
    }
    {
      ScopedSpan inner("test.inner");
      inner.args(4, 0);
    }
    outer.args(7, 1024);
    outer.stop(StopReason::StateCap);
  }
  const RunProfileSnapshot snap = log.snapshotProfile();

  const PhaseSpan* outer = snap.find("test.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_TRUE(outer->topLevel);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->arg0, 7);
  EXPECT_EQ(outer->arg1, 1024);
  EXPECT_EQ(outer->arg0Label, "widgets");
  EXPECT_EQ(outer->arg1Label, "bytes");
  EXPECT_EQ(outer->lastStop, StopReason::StateCap);
  EXPECT_GE(outer->seconds, 0.0);
  EXPECT_GE(outer->lastEndSeconds, outer->firstBeginSeconds);

  const PhaseSpan* inner = snap.find("test.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_FALSE(inner->topLevel);  // nested spans never count as wall time
  EXPECT_EQ(inner->count, 2u);
  EXPECT_EQ(inner->arg0, 7);  // 3 + 4 summed across spans

  // Only the outer span contributes to the wall-time partition.
  EXPECT_DOUBLE_EQ(snap.topLevelSeconds(), outer->seconds);
}

TEST(EventLogTest, ResetProfileClearsTheTable) {
  EventLog& log = EventLog::instance();
  log.resetProfile();
  { ScopedSpan s("test.reset-me"); }
  EXPECT_NE(log.snapshotProfile().find("test.reset-me"), nullptr);
  log.resetProfile();
  EXPECT_EQ(log.snapshotProfile().find("test.reset-me"), nullptr);
  EXPECT_TRUE(log.snapshotProfile().phases.empty());
}

TEST(EventLogTest, SetEnabledFalseSuppressesRecording) {
  EventLog& log = EventLog::instance();
  log.resetProfile();
  log.setEnabled(false);
  EXPECT_FALSE(log.enabled());
  { ScopedSpan s("test.disabled"); }
  log.instant(log.internName("test.disabled-instant"));
  log.setEnabled(true);
  EXPECT_TRUE(log.enabled());
  EXPECT_EQ(log.snapshotProfile().find("test.disabled"), nullptr);
}

TEST(EventLogTest, DisarmedDumpReturnsEmpty) {
  EventLog& log = EventLog::instance();
  log.disarm();
  EXPECT_FALSE(log.armed());
  EXPECT_EQ(log.dump("unit"), "");
}

TEST(EventLogTest, ArmedDumpWritesHeaderAndEventLines) {
  EventLog& log = EventLog::instance();
  log.resetProfile();
  const std::string dir = makeTempDir();
  log.arm(dir, "unittest");
  EXPECT_TRUE(log.armed());

  const std::uint16_t beat = log.internName("test.beat", "ticks", nullptr);
  log.instant(beat, 42, 7);
  {
    ScopedSpan s("test.dump-span", "states", "bytes");
    s.args(11, 22);
    s.stop(StopReason::Deadline);
  }
  const std::string path = log.dump("unit");
  log.disarm();
  ASSERT_EQ(path, dir + "/flight-unittest-unit.ndjson");

  const std::string text = readWholeFile(path);
  std::istringstream lines(text);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_NE(header.find("\"flight\":\"unittest\""), std::string::npos);
  EXPECT_NE(header.find("\"trigger\":\"unit\""), std::string::npos);
  EXPECT_NE(header.find("\"ringCapacity\""), std::string::npos);

  // The body must contain the instant (with its labeled arg), the span
  // begin, and the span end carrying the stop reason.
  EXPECT_NE(text.find("\"kind\":\"instant\",\"name\":\"test.beat\""),
            std::string::npos);
  EXPECT_NE(text.find("\"ticks\":42"), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"span-begin\",\"name\":\"test.dump-span\""),
            std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"span-end\",\"name\":\"test.dump-span\","
                      "\"stop\":\"deadline\",\"states\":11,\"bytes\":22"),
            std::string::npos);
}

TEST(EventLogTest, CheckFailureDumpsWhenArmed) {
  EventLog& log = EventLog::instance();
  const std::string dir = makeTempDir();
  log.arm(dir, "unittest");
  EXPECT_THROW(FT_CHECK(false) << "eventlog hook probe", CheckError);
  log.disarm();
  const std::string text =
      readWholeFile(dir + "/flight-unittest-check-failure.ndjson");
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"trigger\":\"check-failure\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"check.failure\""), std::string::npos);
}

TEST(EventLogTest, ConcurrentSpansAggregateAndDumpSafely) {
  EventLog& log = EventLog::instance();
  log.resetProfile();
  const std::string dir = makeTempDir();
  log.arm(dir, "unittest");

  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan s("test.mt-span", "iters", nullptr);
        s.args(1, 0);
        if ((i & 31) == 0) log.instant(log.internName("test.mt-instant"));
      }
    });
  }
  // Dump while the writers are live: the single-writer relaxed rings
  // make this race benign (and TSan-clean in the sanitizer configs).
  (void)log.dump("race");
  for (auto& t : threads) t.join();
  const std::string path = log.dump("settled");
  log.disarm();

  const PhaseSpan* span = log.snapshotProfile().find("test.mt-span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count,
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(span->arg0, kThreads * kSpansPerThread);

  // Every ring in the settled dump must list its events in seq order.
  std::istringstream lines(readWholeFile(path));
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));  // header
  long lastRing = -1, lastSeq = -1;
  while (std::getline(lines, line)) {
    long ring = -1, seq = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "{\"ring\":%ld,\"seq\":%ld", &ring,
                          &seq),
              2)
        << line;
    if (ring == lastRing) {
      EXPECT_EQ(seq, lastSeq + 1) << line;
    }
    lastRing = ring;
    lastSeq = seq;
  }
}

#else  // FENCETRADE_NO_METRICS

TEST(EventLogTest, NoMetricsBuildCompilesToNoops) {
  EventLog& log = EventLog::instance();
  log.setEnabled(true);
  EXPECT_FALSE(log.enabled());
  { ScopedSpan s("anything", "a", "b"); }
  EXPECT_TRUE(log.snapshotProfile().phases.empty());
  log.arm("/tmp", "noop");
  EXPECT_FALSE(log.armed());
  EXPECT_EQ(log.dump("unit"), "");
}

#endif  // FENCETRADE_NO_METRICS

}  // namespace
}  // namespace fencetrade::util
