#include "util/mathx.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fencetrade::util {
namespace {

TEST(MathxTest, Ilog2Floor) {
  EXPECT_EQ(ilog2Floor(1), 0);
  EXPECT_EQ(ilog2Floor(2), 1);
  EXPECT_EQ(ilog2Floor(3), 1);
  EXPECT_EQ(ilog2Floor(4), 2);
  EXPECT_EQ(ilog2Floor(1023), 9);
  EXPECT_EQ(ilog2Floor(1024), 10);
  EXPECT_THROW(ilog2Floor(0), CheckError);
}

TEST(MathxTest, Ilog2Ceil) {
  EXPECT_EQ(ilog2Ceil(1), 0);
  EXPECT_EQ(ilog2Ceil(2), 1);
  EXPECT_EQ(ilog2Ceil(3), 2);
  EXPECT_EQ(ilog2Ceil(4), 2);
  EXPECT_EQ(ilog2Ceil(5), 3);
  EXPECT_EQ(ilog2Ceil(1024), 10);
  EXPECT_EQ(ilog2Ceil(1025), 11);
}

TEST(MathxTest, CeilDiv) {
  EXPECT_EQ(ceilDiv(10, 5), 2);
  EXPECT_EQ(ceilDiv(11, 5), 3);
  EXPECT_EQ(ceilDiv(0, 5), 0);
  EXPECT_EQ(ceilDiv(1, 5), 1);
  EXPECT_THROW(ceilDiv(1, 0), CheckError);
}

TEST(MathxTest, Ipow) {
  EXPECT_EQ(ipow(2, 0), 1);
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(3, 4), 81);
  EXPECT_EQ(ipow(1, 60), 1);
  EXPECT_THROW(ipow(10, 30), CheckError);  // overflow detected
}

TEST(MathxTest, BranchingFactorCoversN) {
  for (int n : {2, 3, 4, 7, 8, 16, 17, 64, 100, 1024}) {
    for (int f = 1; f <= 10; ++f) {
      const int b = branchingFactor(n, f);
      EXPECT_GE(b, 2);
      // b^f >= n
      std::int64_t p = 1;
      for (int i = 0; i < f && p < n; ++i) p *= b;
      EXPECT_GE(p, n) << "n=" << n << " f=" << f << " b=" << b;
      // minimality: (b-1)^f < n whenever b > 2
      if (b > 2) {
        std::int64_t q = 1;
        for (int i = 0; i < f && q < n; ++i) q *= (b - 1);
        EXPECT_LT(q, n) << "n=" << n << " f=" << f << " b=" << b;
      }
    }
  }
}

TEST(MathxTest, BranchingFactorExtremes) {
  EXPECT_EQ(branchingFactor(16, 1), 16);  // GT_1 = one Bakery over n
  EXPECT_EQ(branchingFactor(16, 4), 2);   // binary tournament
  EXPECT_EQ(branchingFactor(16, 2), 4);   // sqrt(n) branching
  EXPECT_EQ(branchingFactor(1, 3), 2);    // degenerate single process
}

}  // namespace
}  // namespace fencetrade::util
