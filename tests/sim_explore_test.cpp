#include "sim/explore.h"

#include <gtest/gtest.h>

#include "sim/builder.h"

namespace fencetrade::sim {
namespace {

TEST(ExploreTest, SingleProcessHasOneOutcome) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  ProgramBuilder b("solo");
  LocalId x = b.local("x");
  b.writeRegImm(r, 3);
  b.fence();
  b.readReg(x, r);
  b.fence();
  b.ret(b.L(x));
  sys.programs.push_back(b.build());

  auto res = explore(sys);
  EXPECT_EQ(res.outcomes.size(), 1u);
  EXPECT_TRUE(res.outcomes.count({3}));
  EXPECT_FALSE(res.capped());
  EXPECT_FALSE(res.mutexViolation);
}

TEST(ExploreTest, RacingReadersSeeBothValues) {
  // p0 writes r=1 and returns; p1 reads r once: both 0 and 1 reachable.
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  {
    ProgramBuilder b("writer");
    b.writeRegImm(r, 1);
    b.fence();
    b.retImm(0);
    sys.programs.push_back(b.build());
  }
  {
    ProgramBuilder b("reader");
    LocalId x = b.local("x");
    b.readReg(x, r);
    b.fence();
    b.ret(b.L(x));
    sys.programs.push_back(b.build());
  }
  auto res = explore(sys);
  EXPECT_TRUE(res.outcomes.count({0, 0}));
  EXPECT_TRUE(res.outcomes.count({0, 1}));
  EXPECT_EQ(res.outcomes.size(), 2u);
}

TEST(ExploreTest, DetectsMutualExclusionViolationOfNoLock) {
  // Two processes with CS markers and no lock at all: the explorer must
  // find a state with both inside.
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  for (int p = 0; p < 2; ++p) {
    ProgramBuilder b("nolock#" + std::to_string(p));
    LocalId x = b.local("x");
    b.readReg(x, r);  // one step before the CS so the witness is non-empty
    b.csBegin();
    b.readReg(x, r);
    b.writeReg(r, b.add(b.L(x), b.imm(1)));
    b.fence();
    b.csEnd();
    b.ret(b.L(x));
    sys.programs.push_back(b.build());
  }
  auto res = explore(sys);
  EXPECT_TRUE(res.mutexViolation);
  EXPECT_GE(res.maxCsOccupancy, 2);
  EXPECT_FALSE(res.witness.empty());
}

TEST(ExploreTest, WitnessReplaysToViolation) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  for (int p = 0; p < 2; ++p) {
    ProgramBuilder b("nolock#" + std::to_string(p));
    LocalId x = b.local("x");
    b.readReg(x, r);  // one step before the CS so the witness is non-empty
    b.csBegin();
    b.readReg(x, r);
    b.writeReg(r, b.add(b.L(x), b.imm(1)));
    b.fence();
    b.csEnd();
    b.ret(b.L(x));
    sys.programs.push_back(b.build());
  }
  auto res = explore(sys);
  ASSERT_TRUE(res.mutexViolation);

  // Replay the witness schedule and confirm both end up in the CS.
  Config cfg = initialConfig(sys);
  for (auto [p, reg] : res.witness) {
    ASSERT_TRUE(execElem(sys, cfg, p, reg).has_value());
  }
  int occ = 0;
  for (int p = 0; p < sys.n(); ++p) {
    if (inCriticalSection(sys, cfg, p)) ++occ;
  }
  EXPECT_GE(occ, 2);
}

TEST(ExploreTest, StateCapReportsCapped) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  for (int p = 0; p < 3; ++p) {
    ProgramBuilder b("w#" + std::to_string(p));
    LocalId x = b.local("x");
    b.readReg(x, r);
    b.writeReg(r, b.add(b.L(x), b.imm(1)));
    b.fence();
    b.ret(b.L(x));
    sys.programs.push_back(b.build());
  }
  ExploreOptions opts;
  opts.maxStates = 10;
  auto res = explore(sys, opts);
  EXPECT_TRUE(res.capped());
  EXPECT_LE(res.statesVisited, 11u);
}

TEST(ExploreTest, DeterministicAcrossRuns) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  for (int p = 0; p < 2; ++p) {
    ProgramBuilder b("d#" + std::to_string(p));
    LocalId x = b.local("x");
    b.readReg(x, r);
    b.writeReg(r, b.add(b.L(x), b.imm(1)));
    b.fence();
    b.ret(b.L(x));
    sys.programs.push_back(b.build());
  }
  auto a = explore(sys);
  auto b2 = explore(sys);
  EXPECT_EQ(a.outcomes, b2.outcomes);
  EXPECT_EQ(a.statesVisited, b2.statesVisited);
}

}  // namespace
}  // namespace fencetrade::sim
