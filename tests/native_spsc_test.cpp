#include "native/spsc_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/check.h"

namespace fencetrade::native {
namespace {

TEST(SpscQueueTest, PushPopSingleThread) {
  SpscQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.tryPush(1));
  EXPECT_TRUE(q.tryPush(2));
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.tryPop().value(), 1);
  EXPECT_EQ(q.tryPop().value(), 2);
  EXPECT_FALSE(q.tryPop().has_value());
}

TEST(SpscQueueTest, FullQueueRejectsPush) {
  SpscQueue<int> q(2);
  EXPECT_TRUE(q.tryPush(1));
  EXPECT_TRUE(q.tryPush(2));
  EXPECT_FALSE(q.tryPush(3));
  EXPECT_EQ(q.tryPop().value(), 1);
  EXPECT_TRUE(q.tryPush(3));
}

TEST(SpscQueueTest, WrapsAroundRing) {
  SpscQueue<int> q(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(q.tryPush(round * 2));
    EXPECT_TRUE(q.tryPush(round * 2 + 1));
    EXPECT_EQ(q.tryPop().value(), round * 2);
    EXPECT_EQ(q.tryPop().value(), round * 2 + 1);
  }
}

TEST(SpscQueueTest, ZeroCapacityRejected) {
  EXPECT_THROW(SpscQueue<int> q(0), util::CheckError);
}

TEST(SpscQueueTest, ReleaseAcquireHandoffPreservesDataAndOrder) {
  // Portable variant: data handed producer -> consumer must be intact
  // and in order (the MP litmus in library form).
  SpscQueue<std::int64_t, Ordering::ReleaseAcquire> q(16);
  constexpr std::int64_t kItems = 50000;
  std::vector<std::int64_t> got;
  got.reserve(kItems);

  std::thread producer([&] {
    for (std::int64_t i = 0; i < kItems;) {
      if (q.tryPush(i)) ++i;
    }
  });
  std::thread consumer([&] {
    while (static_cast<std::int64_t>(got.size()) < kItems) {
      if (auto v = q.tryPop()) got.push_back(*v);
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (std::int64_t i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
}

TEST(SpscQueueTest, RelaxedVariantWorksOnTsoHardware) {
  // On x86 (hardware TSO) the relaxed variant behaves like the fenced
  // one — the machine-level separation demonstrated by sim::litmusMP is
  // that under PSO it would not.  This test documents the TSO side; on
  // ARM/POWER it could legitimately fail and the sim litmus tests carry
  // the claim instead.
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  SpscQueue<std::int64_t, Ordering::Relaxed> q(16);
  constexpr std::int64_t kItems = 20000;
  std::vector<std::int64_t> got;
  got.reserve(kItems);

  std::thread producer([&] {
    for (std::int64_t i = 0; i < kItems;) {
      if (q.tryPush(i)) ++i;
    }
  });
  std::thread consumer([&] {
    while (static_cast<std::int64_t>(got.size()) < kItems) {
      if (auto v = q.tryPop()) got.push_back(*v);
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
  for (std::int64_t i = 0; i < kItems; ++i) EXPECT_EQ(got[i], i);
#else
  GTEST_SKIP() << "relaxed-ordering demo is only meaningful on TSO hardware";
#endif
}

}  // namespace
}  // namespace fencetrade::native
