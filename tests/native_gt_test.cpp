#include "native/gt_lock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "native/fences.h"
#include "native/lock.h"
#include "util/check.h"
#include "util/mathx.h"

namespace fencetrade::native {
namespace {

TEST(NativeGtTest, StructureMatchesFormula) {
  GeneralizedTournamentLock gt(64, 2);
  EXPECT_EQ(gt.height(), 2);
  EXPECT_EQ(gt.branching(), 8);
  EXPECT_EQ(gt.fencesPerPassage(), 8u);

  GeneralizedTournamentLock bin(64, 6);
  EXPECT_EQ(bin.branching(), 2);
  EXPECT_EQ(bin.fencesPerPassage(), 24u);
}

TEST(NativeGtTest, HeightClamped) {
  GeneralizedTournamentLock gt(8, 100);
  EXPECT_EQ(gt.height(), 3);
}

TEST(NativeGtTest, FencesPerPassageMeasuredMatchesFormula) {
  for (int f : {1, 2, 3, 4}) {
    GeneralizedTournamentLock gt(16, f);
    FenceCountScope scope;
    gt.lock(5);
    gt.unlock(5);
    EXPECT_EQ(scope.count(), gt.fencesPerPassage()) << "f=" << f;
  }
}

TEST(NativeGtTest, TournamentLockIsBinaryFullHeight) {
  TournamentLock t(32);
  EXPECT_EQ(t.height(), 5);
  EXPECT_EQ(t.branching(), 2);
  FenceCountScope scope;
  t.lock(17);
  t.unlock(17);
  EXPECT_EQ(scope.count(), 20u);  // 4 fences × 5 levels
}

TEST(NativeGtTest, MutualExclusionUnderThreadsAllHeights) {
  constexpr int kThreads = 4;
  constexpr int kIters = 1500;
  for (int f : {1, 2}) {
    GeneralizedTournamentLock gt(kThreads, f);
    std::int64_t counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          LockGuard<GeneralizedTournamentLock> g(gt, t);
          ++counter;
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters)
        << "f=" << f;
  }
}

TEST(NativeGtTest, NonPowerCapacityWorks) {
  // 10 threads, height 2 -> branching 4, tail nodes smaller.
  constexpr int kThreads = 5;
  GeneralizedTournamentLock gt(10, 2);
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 800; ++i) {
        LockGuard<GeneralizedTournamentLock> g(gt, t * 2 + 1);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * 800);
}

TEST(NativeGtTest, SingleThreadAllSlots) {
  GeneralizedTournamentLock gt(27, 3);
  EXPECT_EQ(gt.branching(), 3);
  for (int id = 0; id < 27; ++id) {
    gt.lock(id);
    gt.unlock(id);
  }
}

TEST(NativeGtTest, BadParametersRejected) {
  EXPECT_THROW(GeneralizedTournamentLock(0, 1), util::CheckError);
  EXPECT_THROW(GeneralizedTournamentLock(4, 0), util::CheckError);
  GeneralizedTournamentLock gt(4, 2);
  EXPECT_THROW(gt.lock(4), util::CheckError);
}

}  // namespace
}  // namespace fencetrade::native
