// util::FrameDecoder: roundtrip, incremental delivery, typed corruption
// detection, and the fuzz guarantee — arbitrary byte mutations may
// poison the stream but never crash the decoder.
#include "util/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.h"

namespace fencetrade {
namespace {

using util::Frame;
using util::FrameDecoder;

TEST(FrameTest, EncodeDecodeRoundtrip) {
  FrameDecoder dec;
  dec.feed(util::encodeFrame(7, "hello"));
  Frame f;
  ASSERT_EQ(dec.next(f), FrameDecoder::Status::Frame);
  EXPECT_EQ(f.type, 7u);
  EXPECT_EQ(f.payload, "hello");
  EXPECT_EQ(dec.next(f), FrameDecoder::Status::NeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameTest, EmptyPayloadAndBinaryPayload) {
  FrameDecoder dec;
  std::string binary("\x00\xff\x00""FTMF\n", 9);
  dec.feed(util::encodeFrame(0, ""));
  dec.feed(util::encodeFrame(42, binary));
  Frame f;
  ASSERT_EQ(dec.next(f), FrameDecoder::Status::Frame);
  EXPECT_EQ(f.type, 0u);
  EXPECT_TRUE(f.payload.empty());
  ASSERT_EQ(dec.next(f), FrameDecoder::Status::Frame);
  EXPECT_EQ(f.type, 42u);
  EXPECT_EQ(f.payload, binary);
}

TEST(FrameTest, ByteAtATimeDelivery) {
  const std::string wire =
      util::encodeFrame(3, "partial delivery") + util::encodeFrame(4, "x");
  FrameDecoder dec;
  Frame f;
  std::vector<Frame> got;
  for (char c : wire) {
    dec.feed(std::string_view(&c, 1));
    while (dec.next(f) == FrameDecoder::Status::Frame) got.push_back(f);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, 3u);
  EXPECT_EQ(got[0].payload, "partial delivery");
  EXPECT_EQ(got[1].type, 4u);
  EXPECT_EQ(got[1].payload, "x");
}

TEST(FrameTest, BadMagicIsCorruptImmediately) {
  FrameDecoder dec;
  dec.feed("G");  // first byte already wrong
  Frame f;
  EXPECT_EQ(dec.next(f), FrameDecoder::Status::Corrupt);
  EXPECT_TRUE(dec.corrupt());
}

TEST(FrameTest, ChecksumMismatchIsCorrupt) {
  std::string wire = util::encodeFrame(1, "payload");
  wire.back() ^= 0x01;  // flip a payload bit
  FrameDecoder dec;
  dec.feed(wire);
  Frame f;
  EXPECT_EQ(dec.next(f), FrameDecoder::Status::Corrupt);
}

TEST(FrameTest, OversizedLengthIsCorruptNotAllocated) {
  std::string wire = util::encodeFrame(1, "p");
  // Rewrite payloadLen (bytes 8..11) to a multi-gigabyte claim.
  wire[8] = wire[9] = wire[10] = wire[11] = static_cast<char>(0xff);
  FrameDecoder dec;
  dec.feed(wire);
  Frame f;
  EXPECT_EQ(dec.next(f), FrameDecoder::Status::Corrupt);
}

TEST(FrameTest, CorruptionIsSticky) {
  FrameDecoder dec;
  dec.feed("XXXX");
  Frame f;
  EXPECT_EQ(dec.next(f), FrameDecoder::Status::Corrupt);
  // A valid frame fed afterwards must not resurrect the stream.
  dec.feed(util::encodeFrame(1, "late"));
  EXPECT_EQ(dec.next(f), FrameDecoder::Status::Corrupt);
  EXPECT_TRUE(dec.corrupt());
}

TEST(FrameTest, TornTrailingFrameStaysNeedMore) {
  const std::string wire = util::encodeFrame(9, "abcdef");
  FrameDecoder dec;
  dec.feed(std::string_view(wire).substr(0, wire.size() - 3));
  Frame f;
  EXPECT_EQ(dec.next(f), FrameDecoder::Status::NeedMore);
  dec.feed(std::string_view(wire).substr(wire.size() - 3));
  EXPECT_EQ(dec.next(f), FrameDecoder::Status::Frame);
  EXPECT_EQ(f.payload, "abcdef");
}

// The fleet-protocol fuzz bar: mutate valid wire bytes at random; the
// decoder may report Corrupt (usually) or deliver un-mutated frames,
// but must never crash, hang, or read out of bounds (ASan/UBSan runs
// this same test).
TEST(FrameTest, FuzzedMutationsNeverCrashTheDecoder) {
  util::Rng rng(0xf4a3);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string wire;
    const int frames = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < frames; ++i) {
      std::string payload;
      const std::size_t len = rng.below(64);
      for (std::size_t j = 0; j < len; ++j) {
        payload.push_back(static_cast<char>(rng.below(256)));
      }
      wire += util::encodeFrame(static_cast<std::uint32_t>(rng.below(16)),
                                payload);
    }
    // 1..4 random byte mutations.
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      wire[rng.below(wire.size())] ^= static_cast<char>(1 + rng.below(255));
    }
    FrameDecoder dec;
    // Deliver in random-sized chunks to hit resume paths.
    std::size_t at = 0;
    Frame f;
    while (at < wire.size()) {
      const std::size_t chunk =
          std::min(wire.size() - at, 1 + rng.below(37));
      dec.feed(std::string_view(wire).substr(at, chunk));
      at += chunk;
      FrameDecoder::Status st;
      while ((st = dec.next(f)) == FrameDecoder::Status::Frame) {
      }
      if (st == FrameDecoder::Status::Corrupt) break;
    }
  }
}

}  // namespace
}  // namespace fencetrade
