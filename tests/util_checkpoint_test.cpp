#include "util/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/check.h"

namespace fencetrade::util {
namespace {

constexpr std::string_view kKind = "test-payload/1";

std::string sampleBlob() {
  CheckpointWriter w;
  w.putU8(0xab);
  w.putU32(0xdeadbeef);
  w.putU64(~std::uint64_t{0});
  w.putI64(-42);
  w.putBytes("hello\0world");  // string_view keeps the embedded NUL out
  w.putBytes(std::string("bin\0ary", 7));
  w.putBool(true);
  w.putBool(false);
  return w.finish(kKind);
}

TEST(CheckpointTest, RoundTripsEveryPrimitive) {
  CheckpointReader r = CheckpointReader::open(sampleBlob(), kKind);
  EXPECT_EQ(r.getU8(), 0xab);
  EXPECT_EQ(r.getU32(), 0xdeadbeefu);
  EXPECT_EQ(r.getU64(), ~std::uint64_t{0});
  EXPECT_EQ(r.getI64(), -42);
  EXPECT_EQ(r.getBytes(), "hello");
  EXPECT_EQ(r.getBytes(), std::string("bin\0ary", 7));
  EXPECT_TRUE(r.getBool());
  EXPECT_FALSE(r.getBool());
  EXPECT_TRUE(r.atEnd());
}

TEST(CheckpointTest, EmptyPayloadRoundTrips) {
  const std::string blob = CheckpointWriter{}.finish("empty/1");
  CheckpointReader r = CheckpointReader::open(blob, "empty/1");
  EXPECT_TRUE(r.atEnd());
}

TEST(CheckpointTest, KindMismatchIsRejected) {
  EXPECT_THROW(CheckpointReader::open(sampleBlob(), "other-kind/1"),
               CheckError);
}

TEST(CheckpointTest, BadMagicIsRejected) {
  std::string blob = sampleBlob();
  blob[0] = 'X';
  EXPECT_THROW(CheckpointReader::open(blob, kKind), CheckError);
}

TEST(CheckpointTest, VersionMismatchIsRejected) {
  std::string blob = sampleBlob();
  blob[4] = static_cast<char>(blob[4] + 1);  // u32 version little-endian
  EXPECT_THROW(CheckpointReader::open(blob, kKind), CheckError);
}

TEST(CheckpointTest, PayloadCorruptionFailsTheChecksum) {
  std::string blob = sampleBlob();
  blob.back() = static_cast<char>(blob.back() ^ 0x01);
  EXPECT_THROW(CheckpointReader::open(blob, kKind), CheckError);
}

TEST(CheckpointTest, TruncationAnywhereIsRejected) {
  const std::string blob = sampleBlob();
  // Every proper prefix must fail framing, length or checksum checks —
  // a half-written file can never be silently resumed.
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    EXPECT_THROW(CheckpointReader::open(blob.substr(0, len), kKind),
                 CheckError)
        << "prefix length " << len;
  }
}

TEST(CheckpointTest, ReaderOverrunThrowsInsteadOfReadingGarbage) {
  CheckpointWriter w;
  w.putU32(7);
  const std::string blob = w.finish(kKind);
  CheckpointReader r = CheckpointReader::open(blob, kKind);
  EXPECT_EQ(r.getU32(), 7u);
  EXPECT_THROW(r.getU64(), CheckError);
}

TEST(CheckpointTest, Fnv1a64MatchesKnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(CheckpointFileTest, AtomicWriteThenReadRoundTrips) {
  const std::string path = testing::TempDir() + "ckpt_roundtrip.bin";
  const std::string blob = sampleBlob();
  ASSERT_TRUE(writeFileAtomic(path, blob));
  const auto back = readFileBytes(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
  // Overwrite with different contents: the new blob fully replaces the
  // old one (rename semantics, no appends or tears).
  ASSERT_TRUE(writeFileAtomic(path, "short"));
  EXPECT_EQ(readFileBytes(path).value_or(""), "short");
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, MissingFileReadsAsNullopt) {
  EXPECT_FALSE(
      readFileBytes(testing::TempDir() + "no_such_checkpoint.bin"));
}

TEST(CheckpointFileTest, AtomicWriteLeavesNoTempFileBehind) {
  const std::string path = testing::TempDir() + "ckpt_notmp.bin";
  ASSERT_TRUE(writeFileAtomic(path, sampleBlob()));
  EXPECT_FALSE(readFileBytes(path + ".tmp").has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fencetrade::util
