#include "util/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/check.h"

namespace fencetrade::util {
namespace {

constexpr std::string_view kKind = "test-payload/1";

std::string sampleBlob() {
  CheckpointWriter w;
  w.putU8(0xab);
  w.putU32(0xdeadbeef);
  w.putU64(~std::uint64_t{0});
  w.putI64(-42);
  w.putBytes("hello\0world");  // string_view keeps the embedded NUL out
  w.putBytes(std::string("bin\0ary", 7));
  w.putBool(true);
  w.putBool(false);
  return w.finish(kKind);
}

TEST(CheckpointTest, RoundTripsEveryPrimitive) {
  CheckpointReader r = CheckpointReader::open(sampleBlob(), kKind);
  EXPECT_EQ(r.getU8(), 0xab);
  EXPECT_EQ(r.getU32(), 0xdeadbeefu);
  EXPECT_EQ(r.getU64(), ~std::uint64_t{0});
  EXPECT_EQ(r.getI64(), -42);
  EXPECT_EQ(r.getBytes(), "hello");
  EXPECT_EQ(r.getBytes(), std::string("bin\0ary", 7));
  EXPECT_TRUE(r.getBool());
  EXPECT_FALSE(r.getBool());
  EXPECT_TRUE(r.atEnd());
}

TEST(CheckpointTest, EmptyPayloadRoundTrips) {
  const std::string blob = CheckpointWriter{}.finish("empty/1");
  CheckpointReader r = CheckpointReader::open(blob, "empty/1");
  EXPECT_TRUE(r.atEnd());
}

TEST(CheckpointTest, KindMismatchIsRejected) {
  EXPECT_THROW(CheckpointReader::open(sampleBlob(), "other-kind/1"),
               CheckError);
}

TEST(CheckpointTest, BadMagicIsRejected) {
  std::string blob = sampleBlob();
  blob[0] = 'X';
  EXPECT_THROW(CheckpointReader::open(blob, kKind), CheckError);
}

TEST(CheckpointTest, VersionMismatchIsRejected) {
  std::string blob = sampleBlob();
  blob[4] = static_cast<char>(blob[4] + 1);  // u32 version little-endian
  EXPECT_THROW(CheckpointReader::open(blob, kKind), CheckError);
}

TEST(CheckpointTest, PayloadCorruptionFailsTheChecksum) {
  std::string blob = sampleBlob();
  blob.back() = static_cast<char>(blob.back() ^ 0x01);
  EXPECT_THROW(CheckpointReader::open(blob, kKind), CheckError);
}

TEST(CheckpointTest, TruncationAnywhereIsRejected) {
  const std::string blob = sampleBlob();
  // Every proper prefix must fail framing, length or checksum checks —
  // a half-written file can never be silently resumed.
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    EXPECT_THROW(CheckpointReader::open(blob.substr(0, len), kKind),
                 CheckError)
        << "prefix length " << len;
  }
}

TEST(CheckpointTest, ReaderOverrunThrowsInsteadOfReadingGarbage) {
  CheckpointWriter w;
  w.putU32(7);
  const std::string blob = w.finish(kKind);
  CheckpointReader r = CheckpointReader::open(blob, kKind);
  EXPECT_EQ(r.getU32(), 7u);
  EXPECT_THROW(r.getU64(), CheckError);
}

// ---------------------------------------------------------------------------
// Corruption hardening: a checkpoint that took damage — any damage —
// must be rejected with a typed CheckError, never crash, never read out
// of bounds (the whole file runs under ASan/UBSan in CI), and never
// yield silently-wrong data.

// Open the blob and drain every field, so corruption that survives
// open() (e.g. a payload-length prefix inside the checksummed region)
// still has to get past the reader's bounds checks.
void openAndDrain(const std::string& blob) {
  CheckpointReader r = CheckpointReader::open(blob, kKind);
  r.getU8();
  r.getU32();
  r.getU64();
  r.getI64();
  r.getBytes();
  r.getBytes();
  r.getBool();
  r.getBool();
  FT_CHECK(r.atEnd()) << "trailing bytes";
}

TEST(CheckpointCorruptionTest, EveryPossibleBitFlipIsRejected) {
  const std::string blob = sampleBlob();
  for (std::size_t i = 0; i < blob.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = blob;
      bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
      EXPECT_THROW(openAndDrain(bad), CheckError)
          << "byte " << i << " bit " << bit;
    }
  }
}

TEST(CheckpointCorruptionTest, EveryTruncationLengthIsRejected) {
  const std::string blob = sampleBlob();
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(openAndDrain(blob.substr(0, len)), CheckError)
        << "prefix length " << len;
  }
}

TEST(CheckpointCorruptionTest, TrailingGarbageIsRejected) {
  // The converse of truncation: a short read that got concatenated with
  // someone else's bytes (or a file appended to twice).
  for (std::size_t extra : {std::size_t{1}, std::size_t{17}}) {
    std::string bad = sampleBlob();
    bad.append(extra, '\xee');
    EXPECT_THROW(openAndDrain(bad), CheckError) << "extra " << extra;
  }
}

TEST(CheckpointCorruptionTest, LyingPayloadLengthIsRejected) {
  // Rewrite the container's 64-bit payloadLen field (the checksum is
  // over the payload only, so this is reachable without a checksum
  // mismatch masking it): any value other than the true remaining size
  // must fail the length check, including extremes that would overflow
  // an addition-form bound.
  const std::string blob = sampleBlob();
  const std::size_t lenAt = 12 + kKind.size();  // magic+ver+kindLen+kind
  for (const std::uint64_t lie :
       {std::uint64_t{0}, std::uint64_t{1} << 40, ~std::uint64_t{0}}) {
    std::string bad = blob;
    for (int i = 0; i < 8; ++i) {
      bad[lenAt + i] = static_cast<char>((lie >> (8 * i)) & 0xff);
    }
    EXPECT_THROW(CheckpointReader::open(bad, kKind), CheckError)
        << "payloadLen lie " << lie;
  }
}

TEST(CheckpointCorruptionTest, WrappingBytesLengthPrefixIsRejected) {
  // A length prefix near 2^64 sits inside the checksummed payload, so
  // only getBytes' own bounds check stands between it and an overrun:
  // `pos_ + len` wraps, `len <= remaining` does not.
  CheckpointWriter w;
  w.putU64(~std::uint64_t{0});  // reader will take this as a byte count
  CheckpointReader r = CheckpointReader::open(w.finish(kKind), kKind);
  EXPECT_THROW(r.getBytes(), CheckError);
}

TEST(CheckpointCorruptionTest, HugeKindLengthIsRejected) {
  std::string bad = sampleBlob();
  for (int i = 0; i < 4; ++i) bad[8 + i] = '\xff';  // kindLen = 2^32-1
  EXPECT_THROW(CheckpointReader::open(bad, kKind), CheckError);
}

TEST(CheckpointCorruptionTest, RandomMutationsNeverEscapeCheckError) {
  // Seeded fuzz: random multi-byte mutations (flips, overwrites,
  // splices).  Decoding must either succeed (mutation landed on
  // checksum-colliding bytes — effectively impossible) or throw
  // CheckError; anything else (crash, other exception, sanitizer trap)
  // fails the test.
  const std::string blob = sampleBlob();
  std::uint64_t state = 0x5eedc0de;
  auto next = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bad = blob;
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      const std::size_t i = next() % bad.size();
      switch (next() % 3) {
        case 0: bad[i] = static_cast<char>(bad[i] ^ (1 << (next() % 8))); break;
        case 1: bad[i] = static_cast<char>(next()); break;
        default: bad.resize(i); break;  // truncate
      }
      if (bad.empty()) break;
    }
    if (bad == blob) continue;
    try {
      openAndDrain(bad);
    } catch (const CheckError&) {
      // expected for essentially every mutation
    }
  }
}

TEST(CheckpointTest, Fnv1a64MatchesKnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(CheckpointFileTest, AtomicWriteThenReadRoundTrips) {
  const std::string path = testing::TempDir() + "ckpt_roundtrip.bin";
  const std::string blob = sampleBlob();
  ASSERT_TRUE(writeFileAtomic(path, blob));
  const auto back = readFileBytes(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
  // Overwrite with different contents: the new blob fully replaces the
  // old one (rename semantics, no appends or tears).
  ASSERT_TRUE(writeFileAtomic(path, "short"));
  EXPECT_EQ(readFileBytes(path).value_or(""), "short");
  std::remove(path.c_str());
}

TEST(CheckpointFileTest, MissingFileReadsAsNullopt) {
  EXPECT_FALSE(
      readFileBytes(testing::TempDir() + "no_such_checkpoint.bin"));
}

TEST(CheckpointFileTest, AtomicWriteLeavesNoTempFileBehind) {
  const std::string path = testing::TempDir() + "ckpt_notmp.bin";
  ASSERT_TRUE(writeFileAtomic(path, sampleBlob()));
  EXPECT_FALSE(readFileBytes(path + ".tmp").has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fencetrade::util
