// Semantics of the comparison primitive (paper, Section 6) on the
// write-buffer machine.
#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/explore.h"
#include "sim/machine.h"
#include "sim/schedule.h"

namespace fencetrade::sim {
namespace {

/// One process: cas(A, expected, desired); return old value.
System singleCas(MemoryModel m, Value expected, Value desired) {
  System sys;
  sys.model = m;
  Reg a = sys.layout.alloc(kNoOwner, "A");
  ProgramBuilder b("caser");
  LocalId old = b.local("old");
  b.casReg(old, a, b.imm(expected), b.imm(desired));
  b.fence();
  b.ret(b.L(old));
  (void)a;
  sys.programs.push_back(b.build());
  return sys;
}

TEST(CasTest, SuccessfulSwapReturnsOldAndWrites) {
  System sys = singleCas(MemoryModel::PSO, 0, 7);
  Config cfg = initialConfig(sys);
  auto s = execElem(sys, cfg, 0, kNoReg);
  ASSERT_TRUE(s);
  EXPECT_EQ(s->kind, StepKind::Cas);
  EXPECT_TRUE(s->casApplied);
  EXPECT_EQ(s->val, 0);             // old value returned
  EXPECT_EQ(cfg.readMem(0), 7);     // applied directly to memory
  EXPECT_TRUE(cfg.buffers[0].empty());
}

TEST(CasTest, FailedSwapLeavesMemoryUntouched) {
  System sys = singleCas(MemoryModel::PSO, 5, 7);  // expects 5, finds 0
  Config cfg = initialConfig(sys);
  auto s = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s->kind, StepKind::Cas);
  EXPECT_FALSE(s->casApplied);
  EXPECT_EQ(s->val, 0);
  EXPECT_EQ(cfg.readMem(0), 0);
}

TEST(CasTest, CasDrainsWriteBufferFirst) {
  // write B; cas A — the pending write must commit before the CAS runs.
  System sys;
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(kNoOwner, "A");
  Reg bb = sys.layout.alloc(kNoOwner, "B");
  ProgramBuilder b("wcas");
  LocalId old = b.local("old");
  b.writeRegImm(bb, 3);
  b.casReg(old, a, b.imm(0), b.imm(1));
  b.fence();
  b.ret(b.L(old));
  sys.programs.push_back(b.build());

  Config cfg = initialConfig(sys);
  execElem(sys, cfg, 0, kNoReg);  // write B (buffered)
  auto s1 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s1->kind, StepKind::Commit) << "CAS must drain the buffer";
  EXPECT_EQ(s1->reg, bb);
  auto s2 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s2->kind, StepKind::Cas);
  EXPECT_TRUE(s2->casApplied);
  EXPECT_EQ(cfg.readMem(a), 1);
}

TEST(CasTest, RmrClassification) {
  // First CAS on an unowned register: remote.  Second CAS by the same
  // process (owning the line): local.
  System sys;
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(kNoOwner, "A");
  ProgramBuilder b("cc");
  LocalId old = b.local("old");
  b.casReg(old, a, b.imm(0), b.imm(1));
  b.casReg(old, a, b.imm(1), b.imm(2));
  b.fence();
  b.ret(b.L(old));
  sys.programs.push_back(b.build());

  Config cfg = initialConfig(sys);
  auto s1 = execElem(sys, cfg, 0, kNoReg);
  auto s2 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_TRUE(s1->remote);
  EXPECT_FALSE(s2->remote) << "line ownership retained";
}

TEST(CasTest, SegmentLocalCasIsLocal) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(0, "A");  // owned by the casing process
  ProgramBuilder b("own");
  LocalId old = b.local("old");
  b.casReg(old, a, b.imm(0), b.imm(1));
  b.fence();
  b.ret(b.L(old));
  sys.programs.push_back(b.build());
  Config cfg = initialConfig(sys);
  auto s = execElem(sys, cfg, 0, kNoReg);
  EXPECT_FALSE(s->remote);
}

TEST(CasTest, AtomicityUnderExhaustiveExploration) {
  // Two processes increment a counter with CAS-retry; every interleaving
  // (including buffered-write commits) must yield exactly 2.
  System sys;
  sys.model = MemoryModel::PSO;
  Reg c = sys.layout.alloc(kNoOwner, "C");
  for (int p = 0; p < 2; ++p) {
    ProgramBuilder b("inc#" + std::to_string(p));
    LocalId cur = b.local("cur");
    LocalId old = b.local("old");
    b.loop([&] {
      b.readReg(cur, c);
      b.cas(old, b.imm(c), b.L(cur), b.add(b.L(cur), b.imm(1)));
      b.exitIf(b.eq(b.L(old), b.L(cur)));
    });
    b.fence();
    b.ret(b.L(old));
    sys.programs.push_back(b.build());
  }
  auto res = explore(sys);
  EXPECT_FALSE(res.capped());
  // Return values are the pre-increment reads: {0,1} in either order —
  // never {0,0} (that would be a lost update).
  for (const auto& outcome : res.outcomes) {
    std::set<Value> vals(outcome.begin(), outcome.end());
    EXPECT_EQ(vals, (std::set<Value>{0, 1}));
  }
}

TEST(CasTest, CountStepsCountsCasSeparately) {
  System sys = singleCas(MemoryModel::PSO, 0, 1);
  Config cfg = initialConfig(sys);
  Execution exec;
  runSolo(sys, cfg, 0, &exec);
  auto counts = countSteps(exec, 1);
  EXPECT_EQ(counts.casSteps, 1);
  EXPECT_EQ(counts.fences, 1);
  EXPECT_EQ(counts.writes, 0);
}

TEST(CasTest, BehaviorIdenticalAcrossModelsSolo) {
  for (auto m : {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
    System sys = singleCas(m, 0, 9);
    Config cfg = initialConfig(sys);
    ASSERT_TRUE(runSolo(sys, cfg, 0, nullptr));
    EXPECT_EQ(cfg.procs[0].retval, 0) << memoryModelName(m);
    EXPECT_EQ(cfg.readMem(0), 9) << memoryModelName(m);
  }
}

TEST(CasTest, UsesCasFlagDetected) {
  System sys = singleCas(MemoryModel::PSO, 0, 1);
  EXPECT_TRUE(sys.programs[0].usesCas());

  ProgramBuilder b("plain");
  b.fence();
  b.retImm(0);
  EXPECT_FALSE(b.build().usesCas());
}

}  // namespace
}  // namespace fencetrade::sim
