#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/check.h"

namespace fencetrade::util {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), CheckError);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(RngTest, Uniform01InUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, HashMixIsOrderSensitive) {
  EXPECT_NE(hashMix(1, 2), hashMix(2, 1));
  EXPECT_EQ(hashMix(1, 2), hashMix(1, 2));
}

TEST(RngTest, HashCombineChangesWithInput) {
  std::uint64_t h = 0;
  auto h1 = hashCombine(h, 1);
  auto h2 = hashCombine(h, 2);
  EXPECT_NE(h1, h2);
}

}  // namespace
}  // namespace fencetrade::util
