// Fetch-and-add — the arithmetic RMW that marks the *boundary* of the
// paper's result: Theorem 4.2 (and its [12] extension to comparison
// primitives) bounds read/write/CAS implementations of the FAI object,
// while a hardware FAA implements it wait-free with O(1) steps and no
// fences at all.
#include <gtest/gtest.h>

#include "encoding/encoder.h"
#include "sim/builder.h"
#include "sim/explore.h"
#include "sim/schedule.h"
#include "util/check.h"
#include "util/permutation.h"

namespace fencetrade::sim {
namespace {

/// Wait-free FAI object: every process performs ONE faa and returns the
/// old value — an ordering algorithm with zero fences beyond the final
/// one and O(1) RMRs per process.
System waitFreeFai(MemoryModel m, int n) {
  System sys;
  sys.model = m;
  Reg c = sys.layout.alloc(kNoOwner, "C");
  for (int p = 0; p < n; ++p) {
    ProgramBuilder b("wf-fai#" + std::to_string(p));
    LocalId old = b.local("old");
    b.faaReg(old, c, b.imm(1));
    b.fence();
    b.ret(b.L(old));
  // The return value must equal NbFinal for the process to return in
  // the decoder's model; under plain schedulers it returns immediately.
    sys.programs.push_back(b.build());
  }
  return sys;
}

TEST(FaaTest, BasicSemantics) {
  System sys = waitFreeFai(MemoryModel::PSO, 1);
  Config cfg = initialConfig(sys);
  auto s = execElem(sys, cfg, 0, kNoReg);
  ASSERT_TRUE(s);
  EXPECT_EQ(s->kind, StepKind::Cas);  // accounted as an RMW step
  EXPECT_EQ(s->val, 0);               // old value
  EXPECT_EQ(cfg.readMem(0), 1);
}

TEST(FaaTest, DrainsBufferLikeCas) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(kNoOwner, "A");
  Reg c = sys.layout.alloc(kNoOwner, "C");
  ProgramBuilder b("w-faa");
  LocalId old = b.local("old");
  b.writeRegImm(a, 9);
  b.faaReg(old, c, b.imm(1));
  b.fence();
  b.ret(b.L(old));
  sys.programs.push_back(b.build());

  Config cfg = initialConfig(sys);
  execElem(sys, cfg, 0, kNoReg);  // write A buffered
  auto s = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s->kind, StepKind::Commit) << "FAA must drain the buffer";
  auto s2 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s2->kind, StepKind::Cas);
}

TEST(FaaTest, WaitFreeFaiIsAtomicExhaustively) {
  // Every interleaving of two concurrent FAAs yields distinct values —
  // no lost updates, under every memory model.
  for (auto m : {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
    auto res = explore(waitFreeFai(m, 2));
    EXPECT_FALSE(res.capped());
    std::set<std::vector<Value>> expected{{0, 1}, {1, 0}};
    EXPECT_EQ(res.outcomes, expected) << memoryModelName(m);
  }
}

TEST(FaaTest, ConstantCostPerOperationAtAnyN) {
  // The boundary of the theorem: O(1) RMW steps, O(1) RMRs, 1 trailing
  // fence — regardless of n.  No read/write (or CAS-only) algorithm can
  // match this per Theorem 4.2.
  for (int n : {2, 8, 64}) {
    System sys = waitFreeFai(MemoryModel::PSO, n);
    Config cfg = initialConfig(sys);
    Execution exec;
    ASSERT_TRUE(runSolo(sys, cfg, 0, &exec));
    auto counts = countSteps(exec, n);
    EXPECT_EQ(counts.casSteps, 1) << "n=" << n;
    EXPECT_LE(counts.rmrsPerProc[0], 1) << "n=" << n;
    EXPECT_EQ(counts.fencesPerProc[0], 1) << "n=" << n;
  }
}

TEST(FaaTest, SequentialRunsReturnIdentity) {
  const int n = 6;
  System sys = waitFreeFai(MemoryModel::PSO, n);
  Config cfg = initialConfig(sys);
  util::Rng rng(3);
  auto pi = util::randomPermutation(n, rng);
  runSequential(sys, cfg, pi);
  for (int k = 0; k < n; ++k) {
    EXPECT_EQ(cfg.procs[pi[k]].retval, k);
  }
}

TEST(FaaTest, EncoderRejectsFaaPrograms) {
  System sys = waitFreeFai(MemoryModel::PSO, 3);
  EXPECT_TRUE(sys.programs[0].usesCas());
  EXPECT_THROW(enc::Encoder enc(&sys), util::CheckError);
}

TEST(FaaTest, RepeatFaaKeepsLineOwnership) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg c = sys.layout.alloc(kNoOwner, "C");
  ProgramBuilder b("faa2");
  LocalId old = b.local("old");
  b.faaReg(old, c, b.imm(1));
  b.faaReg(old, c, b.imm(1));
  b.fence();
  b.ret(b.L(old));
  sys.programs.push_back(b.build());
  Config cfg = initialConfig(sys);
  auto s1 = execElem(sys, cfg, 0, kNoReg);
  auto s2 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_TRUE(s1->remote);
  EXPECT_FALSE(s2->remote);
  EXPECT_EQ(cfg.readMem(c), 2);
}

}  // namespace
}  // namespace fencetrade::sim
