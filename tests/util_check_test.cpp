#include "util/check.h"

#include <gtest/gtest.h>

namespace fencetrade::util {
namespace {

TEST(CheckTest, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(FT_CHECK(1 + 1 == 2) << "never evaluated");
}

TEST(CheckTest, FailingConditionThrowsCheckError) {
  EXPECT_THROW(FT_CHECK(false) << "boom", CheckError);
}

TEST(CheckTest, MessageContainsConditionAndStreamedText) {
  try {
    int x = 41;
    FT_CHECK(x == 42) << "x was " << x;
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x == 42"), std::string::npos);
    EXPECT_NE(what.find("x was 41"), std::string::npos);
    EXPECT_NE(what.find("util_check_test.cpp"), std::string::npos);
  }
}

TEST(CheckTest, StreamedArgumentsNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "side effect";
  };
  FT_CHECK(true) << count();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace fencetrade::util
