#include "check/differential.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "check/corpus.h"
#include "check/inject.h"
#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "core/recoverable.h"
#include "sim/litmus.h"

namespace fencetrade::check {
namespace {

using sim::MemoryModel;

TEST(DifferentialTest, CorrectLockIsConformantAndPasses) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  DifferentialOptions opts;
  opts.livenessMaxStates = 200'000;
  const DifferentialReport rep = runDifferential(sys, opts);
  EXPECT_TRUE(rep.conformant) << rep.detail;
  EXPECT_EQ(rep.verdict, Verdict::Pass) << rep.detail;
  EXPECT_EQ(rep.runs.size(), defaultEngines().size());
  EXPECT_FALSE(rep.liveness.empty());
}

TEST(DifferentialTest, GenuineViolationIsConformantViolated) {
  const sim::System sys =
      core::buildCountSystem(
          MemoryModel::PSO, 2,
          core::petersonTournamentFactory(core::SegmentPolicy::PerProcess,
                                          core::PetersonVariant::TsoFence))
          .sys;
  const DifferentialReport rep = runDifferential(sys, {});
  // Every engine agrees the lock is broken: a conformant violation.
  EXPECT_TRUE(rep.conformant) << rep.detail;
  EXPECT_EQ(rep.verdict, Verdict::Violation);
}

TEST(DifferentialTest, InjectedBugIsAgreedViolatedByAllEngines) {
  sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  ASSERT_GT(stripFence(sys, 0), 0);
  const DifferentialReport rep = runDifferential(sys, {});
  EXPECT_TRUE(rep.conformant) << rep.detail;
  EXPECT_EQ(rep.verdict, Verdict::Violation);
  for (const EngineRun& run : rep.runs) {
    EXPECT_TRUE(run.res.mutexViolation) << run.spec.name;
  }
}

TEST(DifferentialTest, CappedEverywhereIsInconclusive) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 3, core::bakeryFactory()).sys;
  DifferentialOptions opts;
  opts.maxStates = 100;  // far below the reachable space
  const DifferentialReport rep = runDifferential(sys, opts);
  EXPECT_TRUE(rep.conformant) << rep.detail;
  EXPECT_EQ(rep.verdict, Verdict::Inconclusive);
}

TEST(DifferentialTest, LitmusOutcomeSetsAgreeAcrossEngines) {
  for (MemoryModel m :
       {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
    const sim::System sys = sim::litmusSB(m, false);
    const DifferentialReport rep = runDifferential(sys, {});
    ASSERT_TRUE(rep.conformant)
        << "model " << static_cast<int>(m) << ": " << rep.detail;
    EXPECT_EQ(rep.verdict, Verdict::Pass);
    // All engines completed; their outcome sets must literally match.
    const std::set<std::vector<sim::Value>>& first =
        rep.runs.front().res.outcomes;
    for (const EngineRun& run : rep.runs) {
      EXPECT_EQ(run.res.outcomes, first) << run.spec.name;
    }
  }
}

TEST(DifferentialTest, ReductionNeverVisitsMoreStates) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  const DifferentialReport rep = runDifferential(sys, {});
  ASSERT_TRUE(rep.conformant) << rep.detail;
  std::uint64_t unreduced = 0, reduced = 0;
  for (const EngineRun& run : rep.runs) {
    if (run.spec.reduction != sim::ReductionMode::none) {
      reduced = run.res.statesVisited;
    } else {
      unreduced = run.res.statesVisited;
    }
  }
  ASSERT_GT(unreduced, 0u);
  ASSERT_GT(reduced, 0u);
  EXPECT_LE(reduced, unreduced);
}

TEST(CorpusTest, QuickCorpusIsSubsetOfFullAndWellFormed) {
  const auto quick = conformanceCorpus(true);
  const auto full = conformanceCorpus(false);
  EXPECT_GT(quick.size(), 30u);
  EXPECT_GT(full.size(), quick.size());
  for (const CorpusEntry& e : full) {
    EXPECT_FALSE(e.name.empty());
    ASSERT_TRUE(static_cast<bool>(e.make)) << e.name;
    EXPECT_GT(e.maxStates, 0u) << e.name;
    const sim::System sys = e.make();
    EXPECT_GE(sys.n(), 2) << e.name;
  }
}

TEST(CorpusTest, QuickCorpusEntriesMatchExpectations) {
  // The sanitizer-CI subset must hold its ground truth under the
  // default engine matrix; this is the same loop the conformance CLI
  // runs, kept here so plain ctest exercises it too.
  for (const CorpusEntry& e : conformanceCorpus(true)) {
    DifferentialOptions opts;
    opts.maxStates = e.maxStates;
    opts.livenessMaxStates = e.livenessMaxStates;
    const DifferentialReport rep = runDifferential(e.make(), opts);
    EXPECT_TRUE(rep.conformant) << e.name << ": " << rep.detail;
    EXPECT_EQ(rep.verdict, e.expected) << e.name << ": " << rep.detail;
  }
}

// ---------------------------------------------------------------------------
// Cross-engine crash differentials: the full default engine matrix over
// the recoverable locks at every budget, with budget 0 byte-identical
// to a never-configured system and the arch knob invisible to every
// leg's exploration facts.
// ---------------------------------------------------------------------------

sim::System rtasSystem(int crashBudget,
                       sim::Arch arch = sim::Arch::Combined) {
  sim::System sys = core::buildCountSystem(MemoryModel::PSO, 2,
                                           core::recoverableTasFactory())
                        .sys;
  sys.crashBudget = crashBudget;
  sys.arch = arch;
  return sys;
}

TEST(CrashDifferentialTest, RecoverableTasIsConformantAtEveryBudget) {
  for (int budget : {0, 1, 2}) {
    const DifferentialReport rep = runDifferential(rtasSystem(budget), {});
    EXPECT_TRUE(rep.conformant) << "budget " << budget << ": " << rep.detail;
    EXPECT_EQ(rep.verdict, Verdict::Pass)
        << "budget " << budget << ": " << rep.detail;
    EXPECT_EQ(rep.runs.size(), defaultEngines().size()) << budget;
    for (const EngineRun& run : rep.runs) {
      EXPECT_FALSE(run.res.mutexViolation)
          << "budget " << budget << " engine " << run.spec.name;
      EXPECT_FALSE(run.res.capped())
          << "budget " << budget << " engine " << run.spec.name;
    }
  }
}

TEST(CrashDifferentialTest, BudgetZeroLegsMatchTheLegacySystemExactly) {
  // Explicit budget 0 must be indistinguishable — per engine leg, down
  // to state counts and outcome sets — from a system the crash
  // machinery never touched.
  const sim::System legacy =
      core::buildCountSystem(MemoryModel::PSO, 2,
                             core::recoverableTasFactory())
          .sys;
  const DifferentialReport a = runDifferential(rtasSystem(0), {});
  const DifferentialReport b = runDifferential(legacy, {});
  ASSERT_TRUE(a.conformant) << a.detail;
  ASSERT_TRUE(b.conformant) << b.detail;
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    ASSERT_EQ(a.runs[i].spec.name, b.runs[i].spec.name);
    EXPECT_EQ(a.runs[i].res.outcomes, b.runs[i].res.outcomes)
        << a.runs[i].spec.name;
    EXPECT_EQ(a.runs[i].res.mutexViolation, b.runs[i].res.mutexViolation)
        << a.runs[i].spec.name;
    // Visit counts and witness bytes are only a deterministic contract
    // on the single-worker legs; reduced parallel runs prune a
    // timing-dependent subset even between two runs of the same system.
    if (a.runs[i].spec.workers == 1) {
      EXPECT_EQ(a.runs[i].res.statesVisited, b.runs[i].res.statesVisited)
          << a.runs[i].spec.name;
      EXPECT_EQ(a.runs[i].res.witness, b.runs[i].res.witness)
          << a.runs[i].spec.name;
    }
  }
  EXPECT_EQ(a.verdict, b.verdict);
}

TEST(CrashDifferentialTest, ArchVariantsAgreeLegByLegWithCombined) {
  const DifferentialReport ref =
      runDifferential(rtasSystem(1, sim::Arch::Combined), {});
  ASSERT_TRUE(ref.conformant) << ref.detail;
  ASSERT_EQ(ref.verdict, Verdict::Pass) << ref.detail;
  for (sim::Arch arch : {sim::Arch::CC, sim::Arch::DSM}) {
    const DifferentialReport rep =
        runDifferential(rtasSystem(1, arch), {});
    EXPECT_TRUE(rep.conformant) << rep.detail;
    EXPECT_EQ(rep.verdict, Verdict::Pass) << rep.detail;
    ASSERT_EQ(rep.runs.size(), ref.runs.size());
    for (std::size_t i = 0; i < rep.runs.size(); ++i) {
      EXPECT_EQ(rep.runs[i].res.outcomes, ref.runs[i].res.outcomes)
          << rep.runs[i].spec.name;
      // Reduced parallel legs prune timing-dependently; exact visit
      // counts are only comparable on the single-worker legs.
      if (rep.runs[i].spec.workers == 1) {
        EXPECT_EQ(rep.runs[i].res.statesVisited,
                  ref.runs[i].res.statesVisited)
            << rep.runs[i].spec.name;
      }
    }
  }
}

TEST(CrashDifferentialTest, BrokenRecoveryViolatesOnEveryEngine) {
  sim::System sys = core::buildCountSystem(MemoryModel::PSO, 2,
                                           core::brokenRecoverableTasFactory())
                        .sys;
  sys.crashBudget = 1;
  const DifferentialReport rep = runDifferential(sys, {});
  EXPECT_TRUE(rep.conformant) << rep.detail;
  EXPECT_EQ(rep.verdict, Verdict::Violation);
  for (const EngineRun& run : rep.runs) {
    EXPECT_TRUE(run.res.mutexViolation) << run.spec.name;
  }
}

// ---------------------------------------------------------------------------
// Run control through the differential matrix.
// ---------------------------------------------------------------------------

TEST(DifferentialTest, PreTrippedTokenInterruptsBeforeAnyLegRuns) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  util::CancelToken tok;
  tok.cancel();
  DifferentialOptions opts;
  opts.livenessMaxStates = 100'000;
  opts.control.cancel = &tok;
  const DifferentialReport rep = runDifferential(sys, opts);
  EXPECT_EQ(rep.stopReason, util::StopReason::Cancelled);
  EXPECT_EQ(rep.verdict, Verdict::Interrupted);
  EXPECT_TRUE(rep.conformant) << rep.detail;
  EXPECT_TRUE(rep.runs.empty());
  EXPECT_TRUE(rep.liveness.empty());
}

TEST(DifferentialTest, BudgetStoppedLegsRetryOnceThenDegradeHonestly) {
  // A 1-byte memory budget trips every leg's MemoryCap within one poll
  // interval; each leg must record exactly one escalated retry (with a
  // doubled state cap) and the whole entry must degrade to Inconclusive
  // rather than claiming anything about an unexplored space.
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 3, core::bakeryFactory()).sys;
  DifferentialOptions opts;
  opts.control.memBudgetBytes = 1;
  const DifferentialReport rep = runDifferential(sys, opts);
  EXPECT_TRUE(rep.conformant) << rep.detail;
  EXPECT_EQ(rep.verdict, Verdict::Inconclusive);
  ASSERT_EQ(rep.runs.size(), defaultEngines().size());
  for (const EngineRun& run : rep.runs) {
    EXPECT_TRUE(run.retried) << run.spec.name;
    EXPECT_EQ(run.firstStop, util::StopReason::MemoryCap) << run.spec.name;
    EXPECT_EQ(run.res.stopReason, util::StopReason::MemoryCap)
        << run.spec.name;
  }
}

TEST(DifferentialTest, RetryEscalationCanBeDisabled) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 3, core::bakeryFactory()).sys;
  DifferentialOptions opts;
  opts.control.memBudgetBytes = 1;
  opts.retryEscalation = false;
  const DifferentialReport rep = runDifferential(sys, opts);
  EXPECT_EQ(rep.verdict, Verdict::Inconclusive);
  for (const EngineRun& run : rep.runs) {
    EXPECT_FALSE(run.retried) << run.spec.name;
    EXPECT_EQ(run.res.stopReason, util::StopReason::MemoryCap)
        << run.spec.name;
  }
}

TEST(DifferentialTest, HarmlessControlDoesNotChangeTheVerdict) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  util::CancelToken tok;
  DifferentialOptions opts;
  opts.control.cancel = &tok;
  opts.control.deadline = util::RunControl::deadlineIn(3600.0);
  opts.control.memBudgetBytes = ~std::uint64_t{0};
  const DifferentialReport rep = runDifferential(sys, opts);
  EXPECT_TRUE(rep.conformant) << rep.detail;
  EXPECT_EQ(rep.verdict, Verdict::Pass);
  EXPECT_EQ(rep.stopReason, util::StopReason::Complete);
  for (const EngineRun& run : rep.runs) EXPECT_FALSE(run.retried);
}

}  // namespace
}  // namespace fencetrade::check
