// Empirical form of Theorem 4.2 and the supporting lemmas: the code
// length, command counts and value sums of constructed executions relate
// to β (fences) and ρ (RMRs) the way Section 5.3 proves they must.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "encoding/encoder.h"
#include "util/permutation.h"

namespace fencetrade::enc {
namespace {

using core::bakeryFactory;
using core::buildCountSystem;
using core::gtFactory;
using sim::MemoryModel;

EncodeResult encodeCountBakery(int n, const util::Permutation& pi) {
  auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
  Encoder enc(&os.sys);
  return enc.encode(pi);
}

TEST(BoundsTest, CommandCountBoundedByFences) {
  // Lemma 5.11 (rearranged): each process's stack has at most
  // ~4·(fences) + O(1) commands, so m <= c1·β + c2·n overall.
  util::Rng rng(3);
  for (int n : {3, 5, 8}) {
    auto res = encodeCountBakery(n, util::randomPermutation(n, rng));
    EXPECT_LE(res.stackStats.commands, 4 * res.counts.fences + 16 * n)
        << "n=" << n;
  }
}

TEST(BoundsTest, ValueSumBoundedByRemoteSteps) {
  // Lemmas 5.3 and 5.7: the summed command values are within a constant
  // factor of ρ(E) (plus one unit per command for the parameterless
  // ones, which are already covered by the fence bound).
  util::Rng rng(7);
  for (int n : {4, 6, 8}) {
    auto res = encodeCountBakery(n, util::randomPermutation(n, rng));
    const auto waitValues =
        res.stackStats.valueSumOf[static_cast<int>(
            CommandKind::WaitHiddenCommit)] +
        res.stackStats.valueSumOf[static_cast<int>(
            CommandKind::WaitReadFinish)] +
        res.stackStats.valueSumOf[static_cast<int>(
            CommandKind::WaitLocalFinish)];
    EXPECT_LE(waitValues, 6 * res.counts.rmrs) << "n=" << n;
  }
}

TEST(BoundsTest, CodeBitsWithinPaperFormula) {
  // B(E) <= c · β(E) · (log2(ρ(E)/β(E)) + 1) + c'·n  (Section 5.3.4).
  util::Rng rng(11);
  for (int n : {4, 6, 8, 10}) {
    auto res = encodeCountBakery(n, util::randomPermutation(n, rng));
    const double beta = static_cast<double>(res.counts.fences);
    const double rho = static_cast<double>(res.counts.rmrs);
    const double formula = beta * (std::log2(std::max(rho, beta) / beta) + 1.0);
    EXPECT_LE(res.codeBits(), 8.0 * formula + 16.0 * n) << "n=" << n;
  }
}

TEST(BoundsTest, InformationContentCoversPermutationEntropy) {
  // n! distinct codes need >= log2(n!) bits on average; our codes are
  // honest encodings, so their length must meet that floor.
  const int n = 4;
  double totalBits = 0;
  const auto perms = util::allPermutations(n);
  for (const auto& pi : perms) {
    totalBits += encodeCountBakery(n, pi).codeBits();
  }
  const double avgBits = totalBits / static_cast<double>(perms.size());
  EXPECT_GE(avgBits, util::log2Factorial(n));
}

TEST(BoundsTest, TradeoffLowerBoundHoldsPerProcess) {
  // Theorem 4.2 divided by n: some process satisfies
  // f·(log(r/f)+1) = Ω(log n).  Check the *average* against a modest
  // constant — for Bakery-based Count both β and ρ are well above the
  // floor.
  util::Rng rng(13);
  for (int n : {4, 8, 12}) {
    auto res = encodeCountBakery(n, util::randomPermutation(n, rng));
    const double beta = static_cast<double>(res.counts.fences);
    const double rho = static_cast<double>(res.counts.rmrs);
    const double perProc =
        (beta / n) * (std::log2(std::max(rho, beta) / beta) + 1.0);
    EXPECT_GE(perProc, 0.5 * std::log2(static_cast<double>(n)) - 1.0)
        << "n=" << n;
  }
}

TEST(BoundsTest, FenceCheapAlgorithmPaysInRmrs) {
  // The concrete tradeoff: Count over Bakery (O(1) fences/process) must
  // incur Ω(n) RMRs per process in the constructed executions.
  util::Rng rng(17);
  for (int n : {4, 8, 12}) {
    auto res = encodeCountBakery(n, util::randomPermutation(n, rng));
    const double fencesPerProc =
        static_cast<double>(res.counts.fences) / n;
    const double rmrsPerProc = static_cast<double>(res.counts.rmrs) / n;
    EXPECT_LE(fencesPerProc, 8.0) << "n=" << n;          // O(1)
    EXPECT_GE(rmrsPerProc, 0.5 * n) << "n=" << n;        // Ω(n)
  }
}

TEST(BoundsTest, GtEncodingsShiftWeightTowardFences) {
  // Moving from Bakery (f=1) to GT_2 halves the exponent: fences per
  // process go up, RMRs per process go down.
  const int n = 9;
  util::Rng rng(19);
  auto pi = util::randomPermutation(n, rng);

  auto osB = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
  Encoder encB(&osB.sys);
  auto resB = encB.encode(pi);

  auto osG = buildCountSystem(MemoryModel::PSO, n, gtFactory(2));
  Encoder encG(&osG.sys);
  auto resG = encG.encode(pi);

  EXPECT_GT(resG.counts.fences, resB.counts.fences);
  EXPECT_LT(resG.counts.rmrs, resB.counts.rmrs);
}

}  // namespace
}  // namespace fencetrade::enc
