// Ordering property (paper, Definition 4.1) of the lock-based objects.
#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "sim/schedule.h"
#include "util/permutation.h"

namespace fencetrade::core {
namespace {

using sim::MemoryModel;

using SystemBuilder = OrderingSystem (*)(MemoryModel, int,
                                         const LockFactory&);

struct Case {
  const char* objectName;
  SystemBuilder build;
};

class OrderingPerObject : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    Objects, OrderingPerObject,
    ::testing::Values(Case{"count", &buildCountSystem},
                      Case{"fai", &buildFaiSystem},
                      Case{"queue", &buildQueueSystem}),
    [](const auto& paramInfo) { return std::string(paramInfo.param.objectName); });

TEST_P(OrderingPerObject, SequentialExecutionReturnsIdentity) {
  // Definition 4.1 specialized to sequential executions: the k-th
  // process to run must return k, whatever the permutation.
  const int n = 6;
  util::Rng rng(42);
  for (int rep = 0; rep < 5; ++rep) {
    auto pi = util::randomPermutation(n, rng);
    auto os = GetParam().build(MemoryModel::PSO, n, bakeryFactory());
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::runSequential(os.sys, cfg, pi);
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(cfg.procs[pi[k]].retval, k)
          << GetParam().objectName << " rep " << rep;
    }
  }
}

TEST_P(OrderingPerObject, RandomContentionReturnsPermutation) {
  const int n = 4;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto os = GetParam().build(MemoryModel::PSO, n, bakeryFactory());
    sim::Config cfg = sim::initialConfig(os.sys);
    util::Rng rng(seed);
    auto run = sim::runRandom(os.sys, cfg, rng, 1 << 20);
    ASSERT_TRUE(run.completed);
    std::vector<int> returns;
    for (const auto& ps : cfg.procs) {
      returns.push_back(static_cast<int>(ps.retval));
    }
    EXPECT_TRUE(util::isPermutation(returns))
        << GetParam().objectName << " seed " << seed;
  }
}

TEST_P(OrderingPerObject, WorksOverGtLocks) {
  const int n = 8;
  auto os = GetParam().build(MemoryModel::PSO, n, gtFactory(2));
  sim::Config cfg = sim::initialConfig(os.sys);
  util::Rng rng(7);
  auto pi = util::randomPermutation(n, rng);
  sim::runSequential(os.sys, cfg, pi);
  for (int k = 0; k < n; ++k) {
    EXPECT_EQ(cfg.procs[pi[k]].retval, k);
  }
}

TEST(OrderingObjectsTest, QueueWritesElementsAtPositions) {
  const int n = 5;
  auto os = buildQueueSystem(MemoryModel::PSO, n, bakeryFactory());
  sim::Config cfg = sim::initialConfig(os.sys);
  std::vector<sim::ProcId> order{3, 1, 4, 0, 2};
  sim::runSequential(os.sys, cfg, order);
  // Q[k] holds (enqueuer at position k) + 1.
  for (int k = 0; k < n; ++k) {
    EXPECT_EQ(cfg.readMem(os.arrayBase + k), order[k] + 1);
  }
  EXPECT_EQ(cfg.readMem(os.counter), n);  // tail advanced n times
}

TEST(OrderingObjectsTest, FaiAnnouncesValues) {
  const int n = 4;
  auto os = buildFaiSystem(MemoryModel::PSO, n, bakeryFactory());
  sim::Config cfg = sim::initialConfig(os.sys);
  sim::runSequential(os.sys, cfg, {0, 1, 2, 3});
  for (int p = 0; p < n; ++p) {
    EXPECT_EQ(cfg.readMem(os.arrayBase + p), p);  // A[p] = value fetched
  }
  EXPECT_EQ(cfg.readMem(os.counter), n);
}

TEST(OrderingObjectsTest, CsBodyBatchSizesDiffer) {
  // Count buffers one write per CS; FAI and queue buffer two — the
  // shape the encoder's wait-hidden-commit machinery feeds on.
  auto count = buildCountSystem(MemoryModel::PSO, 2, bakeryFactory());
  auto fai = buildFaiSystem(MemoryModel::PSO, 2, bakeryFactory());

  auto maxBatch = [](const sim::System& sys) {
    sim::Config cfg = sim::initialConfig(sys);
    std::size_t maxSize = 0;
    while (!cfg.procs[0].final) {
      sim::execElem(sys, cfg, 0, sim::kNoReg);
      maxSize = std::max(maxSize, cfg.buffers[0].size());
    }
    return maxSize;
  };
  EXPECT_EQ(maxBatch(count.sys), 1u);
  EXPECT_EQ(maxBatch(fai.sys), 2u);
}

}  // namespace
}  // namespace fencetrade::core
