// Fleet fault-tolerance tests: the acceptance bar of the multi-process
// verification fleet is *result identity* — a chaos-injected run's
// merged outcome set, state count, occupancy, verdict, and witness must
// be byte-identical to a fault-free run, which in turn must match the
// sequential unreduced explorer (the differential oracle).  On top of
// that: supervised reassignment must be visible in the telemetry, and a
// shard whose retry budget exhausts must degrade the run to
// Inconclusive — never a silent Pass.
//
// These tests fork/exec the real worker binary (fencetrade_fleet in
// `worker` mode); its path is baked in via FENCETRADE_FLEET_EXE.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <string>

#include "fleet/coordinator.h"
#include "fleet/jobspec.h"
#include "sim/explore.h"

namespace fencetrade::fleet {
namespace {

FleetOptions baseOptions(int workers) {
  FleetOptions o;
  o.workers = workers;
  o.workerExe = FENCETRADE_FLEET_EXE;
  o.heartbeatMs = 10;
  o.stallTimeoutSeconds = 0.5;
  o.deadlineSeconds = 60.0;
  return o;
}

JobSpec gt2Job() {
  JobSpec j;
  j.lock = "gt2";
  j.model = "PSO";
  j.n = 2;
  return j;
}

sim::ExploreResult sequentialOracle(const sim::System& sys) {
  sim::ExploreOptions eo;
  eo.checkMutualExclusion = true;
  eo.stopOnViolation = false;  // the fleet always runs to closure
  return sim::explore(sys, eo);
}

TEST(FleetTest, CleanRunMatchesSequentialOracleAcrossWorkerCounts) {
  const JobSpec job = gt2Job();
  std::string err;
  const auto sys = buildSystem(job, &err);
  ASSERT_TRUE(sys.has_value()) << err;
  const sim::ExploreResult oracle = sequentialOracle(*sys);
  ASSERT_FALSE(oracle.capped());

  for (const int workers : {1, 2, 4}) {
    const FleetResult res = runFleet(*sys, job, baseOptions(workers));
    EXPECT_EQ(res.verdict, check::Verdict::Pass) << workers << " workers";
    EXPECT_TRUE(res.complete) << workers << " workers";
    EXPECT_EQ(res.statesVisited, oracle.statesVisited)
        << workers << " workers";
    EXPECT_EQ(res.outcomes, oracle.outcomes) << workers << " workers";
    EXPECT_EQ(res.maxCsOccupancy, oracle.maxCsOccupancy)
        << workers << " workers";
    EXPECT_EQ(res.respawns, 0) << workers << " workers";
  }
}

TEST(FleetTest, ChaosKillsAreInvisibleInTheMergedResult) {
  const JobSpec job = gt2Job();
  std::string err;
  const auto sys = buildSystem(job, &err);
  ASSERT_TRUE(sys.has_value()) << err;

  FleetOptions clean = baseOptions(2);
  const FleetResult ref = runFleet(*sys, job, clean);
  ASSERT_EQ(ref.verdict, check::Verdict::Pass);
  ASSERT_TRUE(ref.complete);

  // kill-prob 0.1 against this workload reliably lands several kills
  // before the frontier drains; maxFaults puts a hard ceiling under the
  // retry budget so the run always converges.
  FleetOptions chaos = baseOptions(2);
  chaos.chaos.killProb = 0.1;
  chaos.chaos.seed = 42;
  chaos.chaos.maxFaults = 4;
  const FleetResult res = runFleet(*sys, job, chaos);

  // The acceptance bar: >= 2 worker deaths, result byte-identical.
  EXPECT_GE(res.chaosKills, 2);
  // At least one reassignment per kill; a loaded machine may add a few
  // legitimate watchdog reassignments on top (which must be equally
  // invisible in the result).
  EXPECT_GE(res.respawns, res.chaosKills);
  EXPECT_EQ(res.verdict, ref.verdict);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.statesVisited, ref.statesVisited);
  EXPECT_EQ(res.outcomes, ref.outcomes);
  EXPECT_EQ(res.maxCsOccupancy, ref.maxCsOccupancy);
}

TEST(FleetTest, MixedChaosAcrossSeedsStaysDeterministic) {
  const JobSpec job = gt2Job();
  std::string err;
  const auto sys = buildSystem(job, &err);
  ASSERT_TRUE(sys.has_value()) << err;
  const sim::ExploreResult oracle = sequentialOracle(*sys);

  for (const std::uint64_t seed : {3u, 9u, 27u}) {
    FleetOptions chaos = baseOptions(2);
    chaos.chaos.killProb = 0.05;
    chaos.chaos.stallProb = 0.03;
    chaos.chaos.corruptProb = 0.03;
    chaos.chaos.seed = seed;
    chaos.chaos.maxFaults = 5;
    chaos.stallTimeoutSeconds = 0.25;
    const FleetResult res = runFleet(*sys, job, chaos);
    EXPECT_EQ(res.verdict, check::Verdict::Pass) << "seed " << seed;
    EXPECT_TRUE(res.complete) << "seed " << seed;
    EXPECT_EQ(res.statesVisited, oracle.statesVisited) << "seed " << seed;
    EXPECT_EQ(res.outcomes, oracle.outcomes) << "seed " << seed;
  }
}

TEST(FleetTest, StallTriggersWatchdogReassignment) {
  const JobSpec job = gt2Job();
  std::string err;
  const auto sys = buildSystem(job, &err);
  ASSERT_TRUE(sys.has_value()) << err;

  // Stall the very first frames: a SIGSTOPped worker stops heartbeating,
  // the watchdog must detect the missed heartbeats and reassign.
  FleetOptions chaos = baseOptions(2);
  chaos.chaos.stallProb = 1.0;
  chaos.chaos.seed = 1;
  chaos.chaos.maxFaults = 2;
  chaos.stallTimeoutSeconds = 0.2;
  const FleetResult res = runFleet(*sys, job, chaos);

  EXPECT_EQ(res.chaosStalls, 2);
  EXPECT_GE(res.stallsDetected, 1);
  EXPECT_GE(res.respawns, 1);
  EXPECT_EQ(res.verdict, check::Verdict::Pass);
  EXPECT_TRUE(res.complete);
}

TEST(FleetTest, ExhaustedRetriesDegradeToInconclusiveNeverPass) {
  const JobSpec job = gt2Job();
  std::string err;
  const auto sys = buildSystem(job, &err);
  ASSERT_TRUE(sys.has_value()) << err;

  // Kill every frame with a fault budget far above the retry budget:
  // both shards must exhaust their retries and the run must degrade
  // honestly instead of reporting a Pass over a partial state space.
  FleetOptions opts = baseOptions(2);
  opts.chaos.killProb = 1.0;
  opts.chaos.seed = 5;
  opts.chaos.maxFaults = 50;
  opts.backoff.maxAttempts = 2;
  opts.backoff.initialSeconds = 0.01;
  opts.backoff.maxSeconds = 0.02;
  const FleetResult res = runFleet(*sys, job, opts);

  EXPECT_EQ(res.verdict, check::Verdict::Inconclusive);
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.retriesExhausted, 2);
  for (const ShardReport& sh : res.shards) EXPECT_TRUE(sh.failed);
}

TEST(FleetTest, ViolationWitnessIsCanonicalUnderChaos) {
  JobSpec job;
  job.lock = "peterson-tso";
  job.model = "PSO";
  job.n = 2;
  std::string err;
  const auto sys = buildSystem(job, &err);
  ASSERT_TRUE(sys.has_value()) << err;

  // The canonical witness the fleet must reproduce: the deterministic
  // sequential stop-on-violation search.
  sim::ExploreOptions eo;
  eo.checkMutualExclusion = true;
  eo.stopOnViolation = true;
  const sim::ExploreResult seq = sim::explore(*sys, eo);
  ASSERT_TRUE(seq.mutexViolation);

  const FleetResult clean = runFleet(*sys, job, baseOptions(2));
  EXPECT_EQ(clean.verdict, check::Verdict::Violation);
  EXPECT_TRUE(clean.mutexViolation);
  EXPECT_EQ(clean.witness, seq.witness);

  FleetOptions chaos = baseOptions(2);
  chaos.chaos.killProb = 0.1;
  chaos.chaos.seed = 13;
  chaos.chaos.maxFaults = 3;
  const FleetResult res = runFleet(*sys, job, chaos);
  EXPECT_EQ(res.verdict, check::Verdict::Violation);
  EXPECT_EQ(res.witness, seq.witness);
  EXPECT_EQ(res.statesVisited, clean.statesVisited);
}

TEST(FleetTest, SpawnsSurviveAHostileLauncherFdLayout) {
  // Which fds pipe(2) hands the coordinator depends on what the
  // launcher left open: under a shell fd 3 is usually free, under
  // ctest it is not, and a pipe end landing exactly on the worker's
  // fixed fds (3/4) once made the child's dup2 shuffle close its own
  // freshly installed message pipe — every incarnation died instantly
  // with exit 11.  Occupy the low fds to force the collision layouts.
  int held[4];
  for (int& fd : held) fd = ::open("/dev/null", O_WRONLY);
  const JobSpec job = gt2Job();
  std::string err;
  const auto sys = buildSystem(job, &err);
  ASSERT_TRUE(sys.has_value()) << err;
  const FleetResult res = runFleet(*sys, job, baseOptions(2));
  for (int fd : held) {
    if (fd >= 0) ::close(fd);
  }
  EXPECT_EQ(res.verdict, check::Verdict::Pass);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.respawns, 0);
  EXPECT_EQ(res.statesVisited, sequentialOracle(*sys).statesVisited);
}

TEST(FleetTest, BadJobSpecsAreRejected) {
  std::string err;
  JobSpec j;
  j.lock = "no-such-lock";
  EXPECT_FALSE(buildSystem(j, &err).has_value());
  EXPECT_FALSE(err.empty());

  j = gt2Job();
  j.model = "XYZ";
  EXPECT_FALSE(buildSystem(j, &err).has_value());

  j = gt2Job();
  j.n = 99;
  EXPECT_FALSE(buildSystem(j, &err).has_value());
}

}  // namespace
}  // namespace fencetrade::fleet
