// Source-DPOR acceptance tests: the full conformance corpus run through
// every reduction-mode × visited-tier × worker-count combination, plus
// the targeted bloom-tier contract — a clean pass over the lossy tier
// is CompleteLossy (INCONCLUSIVE downstream), never a Pass, while a
// violation found under bloom still carries a replayable witness.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/corpus.h"
#include "check/differential.h"
#include "check/oracles.h"
#include "core/bakery.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "core/recoverable.h"
#include "sim/explore.h"
#include "util/check.h"

namespace fencetrade::check {
namespace {

using sim::MemoryModel;
using sim::ReductionMode;
using sim::VisitedTier;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

std::uint64_t constantHash(std::string_view) { return 42; }

/// Every mode × membership-exact tier × worker count — 12 legs.  The
/// bloom tier is deliberately absent: it can never claim completeness,
/// so the capped-prefix agreement rules would always exclude it; its
/// contract is pinned by the targeted tests below instead.
std::vector<EngineSpec> fullMatrix() {
  std::vector<EngineSpec> m;
  for (ReductionMode mode : {ReductionMode::none, ReductionMode::persistentSet,
                             ReductionMode::sourceDpor}) {
    for (VisitedTier tier : {VisitedTier::exact, VisitedTier::compressed}) {
      for (int workers : {1, 4}) {
        std::string name = std::string(reductionModeName(mode)) + "/" +
                           sim::visitedTierName(tier) + "/w" +
                           std::to_string(workers);
        m.push_back({std::move(name), workers, mode, tier});
      }
    }
  }
  return m;
}

TEST(DporMatrixTest, CorpusAgreesAcrossAllModeTierWorkerCombinations) {
  // The sanitizer builds run the quick subset (litmus + n=2 locks);
  // plain builds sweep the whole standing corpus.  Entries whose budget
  // deliberately caps the space (the n=4 smokes) are trimmed further —
  // the matrix only needs to agree on the capped prefix, and a
  // reduction that *completes* within the cap legitimately upgrades the
  // entry to its real verdict.
  const std::vector<EngineSpec> matrix = fullMatrix();
  for (const CorpusEntry& e : conformanceCorpus(kSanitized)) {
    DifferentialOptions opts;
    opts.maxStates = e.expected == Verdict::Inconclusive
                         ? std::min<std::uint64_t>(e.maxStates, 150'000)
                         : e.maxStates;
    opts.engines = matrix;
    const DifferentialReport rep = runDifferential(e.make(), opts);
    EXPECT_TRUE(rep.conformant) << e.name << ": " << rep.detail;
    EXPECT_EQ(rep.runs.size(), matrix.size()) << e.name;
    if (e.expected == Verdict::Inconclusive) {
      EXPECT_TRUE(rep.verdict == Verdict::Inconclusive ||
                  rep.verdict == Verdict::Pass)
          << e.name << ": " << rep.detail;
    } else {
      EXPECT_EQ(rep.verdict, e.expected) << e.name << ": " << rep.detail;
    }
  }
}

TEST(DporMatrixTest, CompressedTierIsExactUnderForcedHashCollisions) {
  // A constant placement hash funnels every key into one bucket chain;
  // the compressed tier must still be membership-exact (collisions may
  // slow it down, never prune), so the DPOR result matches the oracle.
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  sim::ExploreOptions oracleOpts;
  const sim::ExploreResult oracle = sim::explore(sys, oracleOpts);
  ASSERT_FALSE(oracle.capped());

  sim::ExploreOptions opts;
  opts.reduction = ReductionMode::sourceDpor;
  opts.visitedTier = VisitedTier::compressed;
  opts.debugStateHash = &constantHash;
  const sim::ExploreResult res = sim::explore(sys, opts);
  ASSERT_FALSE(res.capped());
  EXPECT_EQ(res.outcomes, oracle.outcomes);
  EXPECT_EQ(res.mutexViolation, oracle.mutexViolation);
  EXPECT_EQ(res.maxCsOccupancy, oracle.maxCsOccupancy);
  EXPECT_LE(res.statesVisited, oracle.statesVisited);
}

TEST(DporMatrixTest, PerTierByteGaugesAreConsistent) {
  // The per-tier byte gauges (full keyframes / delta hunks / bloom
  // bitmap) must always sum to arenaBytes — the number the memory
  // budget is enforced against — and each tier must populate exactly
  // its own gauges.
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  for (ReductionMode mode : {ReductionMode::none, ReductionMode::persistentSet,
                             ReductionMode::sourceDpor}) {
    for (VisitedTier tier :
         {VisitedTier::exact, VisitedTier::compressed, VisitedTier::bloom}) {
      sim::ExploreOptions opts;
      opts.reduction = mode;
      opts.visitedTier = tier;
      const sim::ExploreResult res = sim::explore(sys, opts);
      const sim::ExploreTelemetry& t = res.telemetry;
      const std::string ctx = std::string(reductionModeName(mode)) + "/" +
                              sim::visitedTierName(tier);
      EXPECT_EQ(t.arenaBytes, t.visitedFullKeyBytes + t.visitedDeltaBytes +
                                  t.visitedBloomBytes)
          << ctx;
      switch (tier) {
        case VisitedTier::exact:
          EXPECT_GT(t.visitedFullKeyBytes, 0u) << ctx;
          EXPECT_EQ(t.visitedDeltaBytes, 0u) << ctx;
          EXPECT_EQ(t.visitedDeltaKeys, 0u) << ctx;
          EXPECT_EQ(t.visitedBloomBytes, 0u) << ctx;
          break;
        case VisitedTier::compressed:
          // Delta encoding must engage and pay: total key bytes stay
          // strictly below an exact run's on the same space.
          EXPECT_GT(t.visitedDeltaKeys, 0u) << ctx;
          EXPECT_GT(t.visitedDeltaBytes, 0u) << ctx;
          EXPECT_EQ(t.visitedBloomBytes, 0u) << ctx;
          break;
        case VisitedTier::bloom:
          EXPECT_EQ(t.visitedFullKeyBytes, 0u) << ctx;
          EXPECT_EQ(t.visitedDeltaBytes, 0u) << ctx;
          EXPECT_GT(t.visitedBloomBytes, 0u) << ctx;
          break;
      }
    }
  }
  // The compression has to actually compress: same space, same mode,
  // strictly fewer key bytes than the exact tier.
  sim::ExploreOptions exactOpts;
  exactOpts.reduction = ReductionMode::sourceDpor;
  const auto exact = sim::explore(sys, exactOpts);
  sim::ExploreOptions compOpts = exactOpts;
  compOpts.visitedTier = VisitedTier::compressed;
  const auto comp = sim::explore(sys, compOpts);
  ASSERT_EQ(exact.statesVisited, comp.statesVisited);
  EXPECT_LT(comp.telemetry.arenaBytes, exact.telemetry.arenaBytes);
}

// ---------------------------------------------------------------------------
// The bloom-tier honesty contract.
// ---------------------------------------------------------------------------

TEST(BloomTierTest, ForcedTotalCollisionIsLossyNeverPass) {
  // With a constant hash every state aliases the first one inserted:
  // the filter prunes the whole space after the initial state.  The
  // run must come back CompleteLossy — capped, hence INCONCLUSIVE at
  // the verdict layer — and must not claim a violation it never saw.
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  for (ReductionMode mode : {ReductionMode::none, ReductionMode::sourceDpor}) {
    sim::ExploreOptions opts;
    opts.reduction = mode;
    opts.visitedTier = VisitedTier::bloom;
    opts.debugStateHash = &constantHash;
    const sim::ExploreResult res = sim::explore(sys, opts);
    EXPECT_EQ(res.stopReason, util::StopReason::CompleteLossy)
        << reductionModeName(mode);
    EXPECT_TRUE(res.capped()) << reductionModeName(mode);
    EXPECT_FALSE(res.mutexViolation) << reductionModeName(mode);
    // Nearly everything was pruned; the explored prefix is tiny.
    EXPECT_LT(res.statesVisited, 100u) << reductionModeName(mode);
    EXPECT_GT(res.telemetry.visitedBloomBytes, 0u) << reductionModeName(mode);
  }
}

TEST(BloomTierTest, UndersizedFilterDrainsAsCompleteLossy) {
  // A realistically undersized bitmap (1024-bit minimum against tens of
  // thousands of states) collides constantly.  However much survives,
  // the drain must report CompleteLossy and never outgrow the true
  // space.
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  const sim::ExploreResult oracle = sim::explore(sys, {});
  ASSERT_FALSE(oracle.capped());

  sim::ExploreOptions opts;
  opts.visitedTier = VisitedTier::bloom;
  opts.bloomBits = 1;  // clamps to the 1024-bit minimum
  const sim::ExploreResult res = sim::explore(sys, opts);
  EXPECT_EQ(res.stopReason, util::StopReason::CompleteLossy);
  EXPECT_FALSE(res.mutexViolation);
  EXPECT_LT(res.statesVisited, oracle.statesVisited);
}

TEST(BloomTierTest, AdequateFilterStillRefusesToClaimCompleteness) {
  // Even a filter big enough to (almost surely) hold every state
  // distinctly must not report Complete: the engine cannot prove the
  // absence of collisions, so the honest answer stays CompleteLossy and
  // the explored prefix matches the oracle in practice.
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  const sim::ExploreResult oracle = sim::explore(sys, {});
  ASSERT_FALSE(oracle.capped());

  sim::ExploreOptions opts;
  opts.visitedTier = VisitedTier::bloom;  // default 128 Mbit
  const sim::ExploreResult res = sim::explore(sys, opts);
  EXPECT_EQ(res.stopReason, util::StopReason::CompleteLossy);
  EXPECT_TRUE(res.capped());
  EXPECT_FALSE(res.mutexViolation);
  EXPECT_EQ(res.outcomes, oracle.outcomes);
  EXPECT_EQ(res.statesVisited, oracle.statesVisited);
}

TEST(BloomTierTest, ViolationFoundUnderBloomStillReplays) {
  // Lossiness only ever hides states; a violation the bloom run *does*
  // reach is real and its witness must replay to >= 2 processes in
  // their critical sections (the oracle re-derives this, it never
  // trusts the engine's claim).
  const sim::System sys =
      core::buildCountSystem(
          MemoryModel::PSO, 2,
          core::petersonTournamentFactory(core::SegmentPolicy::PerProcess,
                                          core::PetersonVariant::TsoFence))
          .sys;
  sim::ExploreOptions opts;
  opts.visitedTier = VisitedTier::bloom;
  const sim::ExploreResult res = sim::explore(sys, opts);
  ASSERT_TRUE(res.mutexViolation);
  ASSERT_FALSE(res.witness.empty());
  const PropertyReport rep = checkMutualExclusionResult(sys, res);
  EXPECT_FALSE(rep.holds) << rep.detail;
  EXPECT_TRUE(rep.verifiedViolation) << rep.detail;
  EXPECT_GE(maxOccupancyOnReplay(sys, res.witness), 2);
}

// ---------------------------------------------------------------------------
// Crash moves through the reductions: every budget × mode × worker
// combination agrees with the unreduced sequential oracle, and the
// broken-recovery canary is found (with a replayable witness) by every
// combination.
// ---------------------------------------------------------------------------

sim::System recoverableSystem(const core::LockFactory& factory,
                              MemoryModel m, int crashBudget,
                              sim::Arch arch = sim::Arch::Combined) {
  sim::System sys = core::buildCountSystem(m, 2, factory).sys;
  sys.crashBudget = crashBudget;
  sys.arch = arch;
  return sys;
}

TEST(CrashMatrixTest, RecoverableTasAgreesAcrossBudgetsModesAndWorkers) {
  for (int budget : {0, 1, 2}) {
    const sim::System sys = recoverableSystem(
        core::recoverableTasFactory(), MemoryModel::PSO, budget);
    const sim::ExploreResult ref = sim::explore(sys, {});
    ASSERT_FALSE(ref.capped()) << "budget " << budget;
    ASSERT_FALSE(ref.mutexViolation) << "budget " << budget;
    for (ReductionMode mode :
         {ReductionMode::none, ReductionMode::persistentSet,
          ReductionMode::sourceDpor}) {
      for (int workers : {1, 4}) {
        sim::ExploreOptions opts;
        opts.reduction = mode;
        opts.workers = workers;
        const sim::ExploreResult res = sim::explore(sys, opts);
        const std::string ctx = std::string("budget ") +
                                std::to_string(budget) + " " +
                                reductionModeName(mode) + "/w" +
                                std::to_string(workers);
        EXPECT_FALSE(res.capped()) << ctx;
        EXPECT_FALSE(res.mutexViolation) << ctx;
        EXPECT_EQ(res.outcomes, ref.outcomes) << ctx;
        // Reductions may only shrink the space; the unreduced engines
        // must reproduce it exactly at every worker count.
        if (mode == ReductionMode::none) {
          EXPECT_EQ(res.statesVisited, ref.statesVisited) << ctx;
        } else {
          EXPECT_LE(res.statesVisited, ref.statesVisited) << ctx;
        }
      }
    }
  }
}

TEST(CrashMatrixTest, BrokenRecoveryIsFoundByEveryModeWorkerCombo) {
  const sim::System sys = recoverableSystem(
      core::brokenRecoverableTasFactory(), MemoryModel::SC, 1);
  for (ReductionMode mode :
       {ReductionMode::none, ReductionMode::persistentSet,
        ReductionMode::sourceDpor}) {
    for (int workers : {1, 4}) {
      sim::ExploreOptions opts;
      opts.reduction = mode;
      opts.workers = workers;
      const sim::ExploreResult res = sim::explore(sys, opts);
      const std::string ctx = std::string(reductionModeName(mode)) + "/w" +
                              std::to_string(workers);
      ASSERT_TRUE(res.mutexViolation) << ctx;
      ASSERT_FALSE(res.witness.empty()) << ctx;
      // The witness must replay — and it must actually crash somebody,
      // because this lock is correct until its recovery section runs.
      EXPECT_GE(maxOccupancyOnReplay(sys, res.witness), 2) << ctx;
      bool crashed = false;
      for (const auto& [p, r] : res.witness) {
        if (r == sim::kCrashReg) crashed = true;
      }
      EXPECT_TRUE(crashed) << ctx << ": witness without a crash move";
    }
  }
}

TEST(CrashMatrixTest, CheckpointFingerprintRejectsCrossBudgetOrArchResume) {
  // A checkpoint taken under (budget, arch) must refuse to resume into
  // any other crash configuration — the visited keys and the move set
  // are budget-shaped, and remote flags are arch-shaped.
  const sim::System sys = recoverableSystem(core::recoverableTasFactory(),
                                            MemoryModel::PSO, 1);
  sim::ExploreOptions first;
  first.maxStates = 200;
  std::string blob;
  first.checkpointOut = &blob;
  ASSERT_EQ(sim::explore(sys, first).stopReason, util::StopReason::StateCap);
  ASSERT_FALSE(blob.empty());

  for (const sim::System& other :
       {recoverableSystem(core::recoverableTasFactory(), MemoryModel::PSO, 0),
        recoverableSystem(core::recoverableTasFactory(), MemoryModel::PSO, 2),
        recoverableSystem(core::recoverableTasFactory(), MemoryModel::PSO, 1,
                          sim::Arch::CC),
        recoverableSystem(core::recoverableTasFactory(), MemoryModel::PSO, 1,
                          sim::Arch::DSM)}) {
    sim::ExploreOptions resume;
    resume.resumeFrom = &blob;
    EXPECT_THROW(sim::explore(other, resume), util::CheckError);
  }

  // The matching configuration resumes to exactly the uninterrupted run.
  sim::ExploreOptions resume;
  resume.resumeFrom = &blob;
  const sim::ExploreResult resumed = sim::explore(sys, resume);
  const sim::ExploreResult ref = sim::explore(sys, {});
  EXPECT_EQ(resumed.stopReason, ref.stopReason);
  EXPECT_EQ(resumed.statesVisited, ref.statesVisited);
  EXPECT_EQ(resumed.outcomes, ref.outcomes);
  EXPECT_EQ(resumed.mutexViolation, ref.mutexViolation);
}

}  // namespace
}  // namespace fencetrade::check
