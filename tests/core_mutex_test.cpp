// Exhaustive mutual-exclusion verification of the lock family under
// every memory model (small n — the state space is explored completely).
#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "sim/explore.h"

namespace fencetrade::core {
namespace {

using sim::MemoryModel;

struct LockCase {
  const char* name;
  int f;  // 0 = plain Bakery, otherwise GT_f
};

LockFactory factoryFor(const LockCase& c) {
  return c.f == 0 ? bakeryFactory() : gtFactory(c.f);
}

class MutexExhaustive
    : public ::testing::TestWithParam<std::tuple<LockCase, MemoryModel>> {};

INSTANTIATE_TEST_SUITE_P(
    LocksAndModels, MutexExhaustive,
    ::testing::Combine(::testing::Values(LockCase{"bakery", 0},
                                         LockCase{"gt1", 1},
                                         LockCase{"gt2", 2}),
                       ::testing::Values(MemoryModel::SC, MemoryModel::TSO,
                                         MemoryModel::PSO)),
    [](const auto& paramInfo) {
      return std::string(std::get<0>(paramInfo.param).name) + "_" +
             sim::memoryModelName(std::get<1>(paramInfo.param));
    });

TEST_P(MutexExhaustive, TwoProcessesNoViolationAllOutcomes) {
  const auto& [lockCase, model] = GetParam();
  auto os = buildCountSystem(model, 2, factoryFor(lockCase));
  sim::ExploreOptions opts;
  opts.maxStates = 5'000'000;
  auto res = sim::explore(os.sys, opts);
  EXPECT_FALSE(res.capped()) << "state space larger than expected: "
                           << res.statesVisited;
  EXPECT_FALSE(res.mutexViolation);
  std::set<std::vector<sim::Value>> expected{{0, 1}, {1, 0}};
  EXPECT_EQ(res.outcomes, expected);
  EXPECT_LE(res.maxCsOccupancy, 1);
}

TEST(MutexExhaustiveHeavy, BakeryThreeProcessesPsoBounded) {
  // n = 3 Bakery under PSO: bounded exploration (the full space is
  // large); within the bound there must be no violation and every
  // discovered terminal outcome must be a permutation.
  auto os = buildCountSystem(MemoryModel::PSO, 3, bakeryFactory());
  sim::ExploreOptions opts;
  opts.maxStates = 400'000;
  auto res = sim::explore(os.sys, opts);
  EXPECT_FALSE(res.mutexViolation);
  for (const auto& outcome : res.outcomes) {
    std::set<sim::Value> values(outcome.begin(), outcome.end());
    EXPECT_EQ(values, (std::set<sim::Value>{0, 1, 2}));
  }
}

TEST(MutexExhaustiveHeavy, Gt2FourProcessesPsoBounded) {
  auto os = buildCountSystem(MemoryModel::PSO, 4, gtFactory(2));
  sim::ExploreOptions opts;
  opts.maxStates = 400'000;
  auto res = sim::explore(os.sys, opts);
  EXPECT_FALSE(res.mutexViolation);
}

}  // namespace
}  // namespace fencetrade::core
