#include "check/fuzz.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/inject.h"
#include "check/oracles.h"
#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "sim/explore.h"
#include "sim/litmus.h"
#include "sim/schedule.h"
#include "util/rng.h"

namespace fencetrade::check {
namespace {

using sim::MemoryModel;

sim::System strippedGt2() {
  sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  const int stripped = stripFence(sys, 0);
  EXPECT_GT(stripped, 0);
  return sys;
}

TEST(InjectTest, StripFenceRemovesOneFencePerProgram) {
  sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  const int before = countFences(sys);
  ASSERT_GT(before, 0);
  const int stripped = stripFence(sys, 0);
  EXPECT_EQ(stripped, sys.n());
  EXPECT_EQ(countFences(sys), before - stripped);
}

TEST(InjectTest, StrippedSystemStillRunsToCompletion) {
  const sim::System sys = strippedGt2();
  sim::Config cfg = sim::initialConfig(sys);
  util::Rng rng(1);
  const sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
  EXPECT_TRUE(run.completed);
}

TEST(InjectTest, OutOfRangeIndexStripsNothing) {
  sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  EXPECT_EQ(stripFence(sys, 99), 0);
}

// The acceptance-criteria test: removing a fence from GT_2 plants a
// genuine mutual-exclusion bug, the reorder-bounded fuzzer finds it,
// and ddmin shrinks the witness to at most 30 scheduled steps.
TEST(FuzzTest, InjectedGt2BugIsCaughtAndShrunkToSmallWitness) {
  const sim::System sys = strippedGt2();
  FuzzOptions opts;
  opts.seeds = 2048;
  const FuzzReport rep = fuzzMutualExclusion(sys, opts);
  ASSERT_EQ(rep.verdict, Verdict::Violation);
  ASSERT_TRUE(rep.witness.has_value());
  EXPECT_GE(rep.witness->occupancy, 2);
  EXPECT_LE(rep.witness->minimized.size(), 30u)
      << "minimized witness too large:\n"
      << scheduleToString(sys, rep.witness->minimized);
  // The minimized schedule must itself replay to a violation.
  EXPECT_GE(maxOccupancyOnReplay(sys, rep.witness->minimized), 2);
  // And it must be 1-minimal: dropping any single element loses it.
  for (std::size_t i = 0; i < rep.witness->minimized.size(); ++i) {
    std::vector<ScheduleElem> sub = rep.witness->minimized;
    sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_LT(maxOccupancyOnReplay(sys, sub), 2)
        << "element " << i << " is removable";
  }
}

TEST(FuzzTest, CorrectLockYieldsPassVerdict) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  FuzzOptions opts;
  opts.seeds = 128;
  const FuzzReport rep = fuzzMutualExclusion(sys, opts);
  EXPECT_EQ(rep.verdict, Verdict::Pass);
  EXPECT_FALSE(rep.witness.has_value());
  EXPECT_EQ(rep.schedulesRun, opts.seeds);
}

// Satellite: witness-shrinking determinism.  Same seed range + same
// system must produce a byte-identical minimized witness on every run
// and at every worker count.
TEST(FuzzTest, MinimizedWitnessIsDeterministicAcrossRunsAndWorkers) {
  const sim::System sys = strippedGt2();
  std::string reference;
  std::uint64_t referenceSeed = 0;
  for (int round = 0; round < 2; ++round) {
    for (int workers : {1, 2, 4}) {
      FuzzOptions opts;
      opts.seeds = 2048;
      opts.workers = workers;
      const FuzzReport rep = fuzzMutualExclusion(sys, opts);
      ASSERT_TRUE(rep.witness.has_value())
          << "round " << round << " workers " << workers;
      const std::string rendered =
          scheduleToString(sys, rep.witness->minimized);
      if (reference.empty()) {
        reference = rendered;
        referenceSeed = rep.witness->seed;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(rep.witness->seed, referenceSeed)
            << "round " << round << " workers " << workers;
        EXPECT_EQ(rendered, reference)
            << "round " << round << " workers " << workers;
      }
    }
  }
}

TEST(FuzzTest, ShrinkProducesOneMinimalSubsequence) {
  // Synthetic violates-predicate: a schedule "violates" iff it contains
  // the three marker elements (1,⊥) (2,⊥) (3,⊥) in order.  ddmin must
  // recover exactly those three.
  const auto violates = [](const std::vector<ScheduleElem>& s) {
    int want = 1;
    for (const auto& [p, r] : s) {
      if (r == sim::kNoReg && p == want) ++want;
      if (want == 4) return true;
    }
    return want == 4;
  };
  std::vector<ScheduleElem> noisy;
  for (int i = 0; i < 40; ++i) noisy.emplace_back(0, sim::kNoReg);
  noisy.emplace_back(1, sim::kNoReg);
  for (int i = 0; i < 17; ++i) noisy.emplace_back(0, sim::kNoReg);
  noisy.emplace_back(2, sim::kNoReg);
  for (int i = 0; i < 9; ++i) noisy.emplace_back(0, sim::kNoReg);
  noisy.emplace_back(3, sim::kNoReg);
  for (int i = 0; i < 23; ++i) noisy.emplace_back(0, sim::kNoReg);
  const std::vector<ScheduleElem> minimized =
      shrinkSchedule(noisy, violates);
  EXPECT_EQ(minimized,
            (std::vector<ScheduleElem>{
                {1, sim::kNoReg}, {2, sim::kNoReg}, {3, sim::kNoReg}}));
}

TEST(FuzzTest, ExhaustiveExplorerAgreesWithFuzzerOnInjectedBug) {
  // Cross-check the fuzzer against ground truth: the exhaustive
  // explorer must also find the injected violation, and on the correct
  // lock neither may claim one.
  const sim::System broken = strippedGt2();
  const sim::ExploreResult exhaustive = sim::explore(broken, {});
  EXPECT_TRUE(exhaustive.mutexViolation);

  const sim::System ok =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  const sim::ExploreResult okRes = sim::explore(ok, {});
  EXPECT_FALSE(okRes.mutexViolation);
  FuzzOptions opts;
  opts.seeds = 64;
  EXPECT_EQ(fuzzMutualExclusion(ok, opts).verdict, Verdict::Pass);
}

TEST(ReorderBoundTest, SeedDeterminism) {
  const sim::System sys = sim::litmusMP(MemoryModel::PSO, false);
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    sim::Config cfgA = sim::initialConfig(sys);
    sim::Config cfgB = sim::initialConfig(sys);
    util::Rng rngA(seed), rngB(seed);
    const sim::ScheduleRunResult a = sim::runReorderBounded(sys, cfgA, rngA);
    const sim::ScheduleRunResult b = sim::runReorderBounded(sys, cfgB, rngB);
    EXPECT_EQ(a.schedule, b.schedule);
    EXPECT_EQ(a.reorderings, b.reorderings);
    EXPECT_EQ(a.completed, b.completed);
  }
}

TEST(ReorderBoundTest, ZeroBudgetForbidsChosenOvertakes) {
  // With reorderBudget = 0 the scheduler may never commit a buffered
  // write over an older one; only forced drains (fences) could, and
  // those drain in order — so reorderings stays 0 on every seed.
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    sim::ReorderBoundOptions opts;
    opts.reorderBudget = 0;
    const sim::ScheduleRunResult run =
        sim::runReorderBounded(sys, cfg, rng, opts);
    ASSERT_TRUE(run.completed) << "seed " << seed;
    EXPECT_EQ(run.reorderings, 0) << "seed " << seed;
  }
}

TEST(ReorderBoundTest, UnlimitedBudgetReachesReorderings) {
  // Some seed within a small range must actually exercise an overtake
  // on a PSO system with multi-register write batches — otherwise the
  // budget knob is dead weight.
  const sim::System sys = strippedGt2();
  std::int64_t total = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    sim::ReorderBoundOptions opts;
    opts.reorderBudget = -1;
    total += sim::runReorderBounded(sys, cfg, rng, opts).reorderings;
  }
  EXPECT_GT(total, 0);
}

TEST(ReorderBoundTest, BudgetIsRespectedByChosenCommits) {
  // Chosen overtakes never exceed the budget.  (Forced drains are
  // charged but cannot be blocked; on this fence-stripped system all
  // commits are scheduler-chosen, so the bound is exact.)
  const sim::System sys = strippedGt2();
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    sim::ReorderBoundOptions opts;
    opts.reorderBudget = 2;
    const sim::ScheduleRunResult run =
        sim::runReorderBounded(sys, cfg, rng, opts);
    EXPECT_LE(run.reorderings, 2) << "seed " << seed;
  }
}

TEST(ReorderBoundTest, StopWhenHaltsAtThePredicate) {
  const sim::System sys = strippedGt2();
  // Find some seed that trips the predicate within the default caps.
  bool tripped = false;
  for (std::uint64_t seed = 1; seed <= 2048 && !tripped; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    sim::ReorderBoundOptions opts;
    opts.stopWhen = [&sys](const sim::Config& c) {
      return sim::detail::csOccupancy(sys, c) >= 2;
    };
    const sim::ScheduleRunResult run =
        sim::runReorderBounded(sys, cfg, rng, opts);
    if (run.stopped) {
      tripped = true;
      // The final configuration satisfies the predicate, and replaying
      // the recorded schedule reproduces it exactly.
      EXPECT_GE(sim::detail::csOccupancy(sys, cfg), 2);
      EXPECT_GE(maxOccupancyOnReplay(sys, run.schedule), 2);
    }
  }
  EXPECT_TRUE(tripped);
}

}  // namespace
}  // namespace fencetrade::check
