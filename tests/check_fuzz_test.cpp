#include "check/fuzz.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/inject.h"
#include "check/oracles.h"
#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/recoverable.h"
#include "sim/builder.h"
#include "sim/explore.h"
#include "sim/litmus.h"
#include "sim/schedule.h"
#include "util/check.h"
#include "util/rng.h"

namespace fencetrade::check {
namespace {

using sim::MemoryModel;

sim::System strippedGt2() {
  sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  const int stripped = stripFence(sys, 0);
  EXPECT_GT(stripped, 0);
  return sys;
}

TEST(InjectTest, StripFenceRemovesOneFencePerProgram) {
  sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  const int before = countFences(sys);
  ASSERT_GT(before, 0);
  const int stripped = stripFence(sys, 0);
  EXPECT_EQ(stripped, sys.n());
  EXPECT_EQ(countFences(sys), before - stripped);
}

TEST(InjectTest, StrippedSystemStillRunsToCompletion) {
  const sim::System sys = strippedGt2();
  sim::Config cfg = sim::initialConfig(sys);
  util::Rng rng(1);
  const sim::ScheduleRunResult run = sim::runReorderBounded(sys, cfg, rng);
  EXPECT_TRUE(run.completed);
}

TEST(InjectTest, OutOfRangeIndexStripsNothing) {
  sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  EXPECT_EQ(stripFence(sys, 99), 0);
}

// The acceptance-criteria test: removing a fence from GT_2 plants a
// genuine mutual-exclusion bug, the reorder-bounded fuzzer finds it,
// and ddmin shrinks the witness to at most 30 scheduled steps.
TEST(FuzzTest, InjectedGt2BugIsCaughtAndShrunkToSmallWitness) {
  const sim::System sys = strippedGt2();
  FuzzOptions opts;
  opts.seeds = 2048;
  const FuzzReport rep = fuzzMutualExclusion(sys, opts);
  ASSERT_EQ(rep.verdict, Verdict::Violation);
  ASSERT_TRUE(rep.witness.has_value());
  EXPECT_GE(rep.witness->occupancy, 2);
  EXPECT_LE(rep.witness->minimized.size(), 30u)
      << "minimized witness too large:\n"
      << scheduleToString(sys, rep.witness->minimized);
  // The minimized schedule must itself replay to a violation.
  EXPECT_GE(maxOccupancyOnReplay(sys, rep.witness->minimized), 2);
  // And it must be 1-minimal: dropping any single element loses it.
  for (std::size_t i = 0; i < rep.witness->minimized.size(); ++i) {
    std::vector<ScheduleElem> sub = rep.witness->minimized;
    sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_LT(maxOccupancyOnReplay(sys, sub), 2)
        << "element " << i << " is removable";
  }
}

TEST(FuzzTest, CorrectLockYieldsPassVerdict) {
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  FuzzOptions opts;
  opts.seeds = 128;
  const FuzzReport rep = fuzzMutualExclusion(sys, opts);
  EXPECT_EQ(rep.verdict, Verdict::Pass);
  EXPECT_FALSE(rep.witness.has_value());
  EXPECT_EQ(rep.schedulesRun, opts.seeds);
}

// Satellite: witness-shrinking determinism.  Same seed range + same
// system must produce a byte-identical minimized witness on every run
// and at every worker count.
TEST(FuzzTest, MinimizedWitnessIsDeterministicAcrossRunsAndWorkers) {
  const sim::System sys = strippedGt2();
  std::string reference;
  std::uint64_t referenceSeed = 0;
  for (int round = 0; round < 2; ++round) {
    for (int workers : {1, 2, 4}) {
      FuzzOptions opts;
      opts.seeds = 2048;
      opts.workers = workers;
      const FuzzReport rep = fuzzMutualExclusion(sys, opts);
      ASSERT_TRUE(rep.witness.has_value())
          << "round " << round << " workers " << workers;
      const std::string rendered =
          scheduleToString(sys, rep.witness->minimized);
      if (reference.empty()) {
        reference = rendered;
        referenceSeed = rep.witness->seed;
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(rep.witness->seed, referenceSeed)
            << "round " << round << " workers " << workers;
        EXPECT_EQ(rendered, reference)
            << "round " << round << " workers " << workers;
      }
    }
  }
}

TEST(FuzzTest, ShrinkProducesOneMinimalSubsequence) {
  // Synthetic violates-predicate: a schedule "violates" iff it contains
  // the three marker elements (1,⊥) (2,⊥) (3,⊥) in order.  ddmin must
  // recover exactly those three.
  const auto violates = [](const std::vector<ScheduleElem>& s) {
    int want = 1;
    for (const auto& [p, r] : s) {
      if (r == sim::kNoReg && p == want) ++want;
      if (want == 4) return true;
    }
    return want == 4;
  };
  std::vector<ScheduleElem> noisy;
  for (int i = 0; i < 40; ++i) noisy.emplace_back(0, sim::kNoReg);
  noisy.emplace_back(1, sim::kNoReg);
  for (int i = 0; i < 17; ++i) noisy.emplace_back(0, sim::kNoReg);
  noisy.emplace_back(2, sim::kNoReg);
  for (int i = 0; i < 9; ++i) noisy.emplace_back(0, sim::kNoReg);
  noisy.emplace_back(3, sim::kNoReg);
  for (int i = 0; i < 23; ++i) noisy.emplace_back(0, sim::kNoReg);
  const std::vector<ScheduleElem> minimized =
      shrinkSchedule(noisy, violates);
  EXPECT_EQ(minimized,
            (std::vector<ScheduleElem>{
                {1, sim::kNoReg}, {2, sim::kNoReg}, {3, sim::kNoReg}}));
}

TEST(FuzzTest, ExhaustiveExplorerAgreesWithFuzzerOnInjectedBug) {
  // Cross-check the fuzzer against ground truth: the exhaustive
  // explorer must also find the injected violation, and on the correct
  // lock neither may claim one.
  const sim::System broken = strippedGt2();
  const sim::ExploreResult exhaustive = sim::explore(broken, {});
  EXPECT_TRUE(exhaustive.mutexViolation);

  const sim::System ok =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  const sim::ExploreResult okRes = sim::explore(ok, {});
  EXPECT_FALSE(okRes.mutexViolation);
  FuzzOptions opts;
  opts.seeds = 64;
  EXPECT_EQ(fuzzMutualExclusion(ok, opts).verdict, Verdict::Pass);
}

TEST(ReorderBoundTest, SeedDeterminism) {
  const sim::System sys = sim::litmusMP(MemoryModel::PSO, false);
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    sim::Config cfgA = sim::initialConfig(sys);
    sim::Config cfgB = sim::initialConfig(sys);
    util::Rng rngA(seed), rngB(seed);
    const sim::ScheduleRunResult a = sim::runReorderBounded(sys, cfgA, rngA);
    const sim::ScheduleRunResult b = sim::runReorderBounded(sys, cfgB, rngB);
    EXPECT_EQ(a.schedule, b.schedule);
    EXPECT_EQ(a.reorderings, b.reorderings);
    EXPECT_EQ(a.completed, b.completed);
  }
}

TEST(ReorderBoundTest, ZeroBudgetForbidsChosenOvertakes) {
  // With reorderBudget = 0 the scheduler may never commit a buffered
  // write over an older one; only forced drains (fences) could, and
  // those drain in order — so reorderings stays 0 on every seed.
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory()).sys;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    sim::ReorderBoundOptions opts;
    opts.reorderBudget = 0;
    const sim::ScheduleRunResult run =
        sim::runReorderBounded(sys, cfg, rng, opts);
    ASSERT_TRUE(run.completed) << "seed " << seed;
    EXPECT_EQ(run.reorderings, 0) << "seed " << seed;
  }
}

TEST(ReorderBoundTest, UnlimitedBudgetReachesReorderings) {
  // Some seed within a small range must actually exercise an overtake
  // on a PSO system with multi-register write batches — otherwise the
  // budget knob is dead weight.
  const sim::System sys = strippedGt2();
  std::int64_t total = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    sim::ReorderBoundOptions opts;
    opts.reorderBudget = -1;
    total += sim::runReorderBounded(sys, cfg, rng, opts).reorderings;
  }
  EXPECT_GT(total, 0);
}

TEST(ReorderBoundTest, BudgetIsRespectedByChosenCommits) {
  // Chosen overtakes never exceed the budget.  (Forced drains are
  // charged but cannot be blocked; on this fence-stripped system all
  // commits are scheduler-chosen, so the bound is exact.)
  const sim::System sys = strippedGt2();
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    sim::ReorderBoundOptions opts;
    opts.reorderBudget = 2;
    const sim::ScheduleRunResult run =
        sim::runReorderBounded(sys, cfg, rng, opts);
    EXPECT_LE(run.reorderings, 2) << "seed " << seed;
  }
}

TEST(ReorderBoundTest, StopWhenHaltsAtThePredicate) {
  const sim::System sys = strippedGt2();
  // Find some seed that trips the predicate within the default caps.
  bool tripped = false;
  for (std::uint64_t seed = 1; seed <= 2048 && !tripped; ++seed) {
    sim::Config cfg = sim::initialConfig(sys);
    util::Rng rng(seed);
    sim::ReorderBoundOptions opts;
    opts.stopWhen = [&sys](const sim::Config& c) {
      return sim::detail::csOccupancy(sys, c) >= 2;
    };
    const sim::ScheduleRunResult run =
        sim::runReorderBounded(sys, cfg, rng, opts);
    if (run.stopped) {
      tripped = true;
      // The final configuration satisfies the predicate, and replaying
      // the recorded schedule reproduces it exactly.
      EXPECT_GE(sim::detail::csOccupancy(sys, cfg), 2);
      EXPECT_GE(maxOccupancyOnReplay(sys, run.schedule), 2);
    }
  }
  EXPECT_TRUE(tripped);
}

// ---------------------------------------------------------------------------
// Run control: injected clock, cancellation, checkpoint/resume.
// ---------------------------------------------------------------------------

/// Thread-safe fake monotonic clock: every query advances time by one
/// second, so "elapsed" is exactly the number of queries made.
std::function<double()> tickingClock() {
  auto calls = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [calls]() -> double {
    return static_cast<double>(calls->fetch_add(1));
  };
}

TEST(FuzzControlTest, FakeClockDeadlineDegradesToInconclusive) {
  // Correct GT_2: no witness will be found, so stopping early must
  // degrade to Inconclusive — never claim Pass over an unfinished scan.
  const sim::System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  FuzzOptions opts;
  opts.seeds = 500;
  opts.maxSeconds = 10.0;
  opts.clock = tickingClock();
  const FuzzReport rep = fuzzMutualExclusion(sys, opts);
  EXPECT_EQ(rep.stopReason, util::StopReason::Deadline);
  EXPECT_EQ(rep.verdict, Verdict::Inconclusive);
  EXPECT_TRUE(rep.capped());
  // The clock is consulted exactly once per scanned seed: the scan
  // stops deterministically after 10 fake seconds = 10 seeds.
  EXPECT_EQ(rep.schedulesRun, 10u);
  EXPECT_FALSE(rep.witness.has_value());
}

TEST(FuzzControlTest, PreTrippedTokenYieldsInterruptedAndACheckpoint) {
  const sim::System sys = strippedGt2();
  util::CancelToken tok;
  tok.cancel();
  FuzzOptions opts;
  opts.seeds = 1000;
  opts.control.cancel = &tok;
  std::string blob;
  opts.checkpointOut = &blob;
  const FuzzReport rep = fuzzMutualExclusion(sys, opts);
  EXPECT_EQ(rep.stopReason, util::StopReason::Cancelled);
  EXPECT_EQ(rep.verdict, Verdict::Interrupted);
  EXPECT_EQ(rep.schedulesRun, 0u);
  EXPECT_FALSE(blob.empty()) << "cancelled scans must leave a checkpoint";

  // Resuming that checkpoint from scratch matches a never-interrupted
  // scan exactly.
  FuzzOptions resume;
  resume.seeds = 1000;
  resume.resumeFrom = &blob;
  const FuzzReport resumed = fuzzMutualExclusion(sys, resume);
  FuzzOptions clean;
  clean.seeds = 1000;
  const FuzzReport ref = fuzzMutualExclusion(sys, clean);
  ASSERT_TRUE(ref.witness.has_value());
  ASSERT_TRUE(resumed.witness.has_value());
  EXPECT_EQ(resumed.witness->seed, ref.witness->seed);
  EXPECT_EQ(resumed.witness->minimized, ref.witness->minimized);
  EXPECT_EQ(resumed.schedulesRun, ref.schedulesRun);
}

/// Interrupt an in-flight scan with a fake-clock deadline, resume it,
/// and require the resumed run to be indistinguishable from a scan that
/// was never interrupted: same smallest violating seed, byte-identical
/// minimized witness, and (single worker) identical counters.
void fuzzInterruptResumeRoundTrip(int workers) {
  const sim::System sys = strippedGt2();
  FuzzOptions base;
  base.seeds = 4096;
  base.workers = workers;
  const FuzzReport ref = fuzzMutualExclusion(sys, base);
  ASSERT_TRUE(ref.witness.has_value());

  FuzzOptions first = base;
  first.maxSeconds = 3.0;
  first.clock = tickingClock();
  std::string blob;
  first.checkpointOut = &blob;
  const FuzzReport partial = fuzzMutualExclusion(sys, first);
  ASSERT_EQ(partial.stopReason, util::StopReason::Deadline);
  ASSERT_FALSE(blob.empty());
  ASSERT_LT(partial.schedulesRun, ref.schedulesRun)
      << "the interrupt landed after the scan already finished";

  FuzzOptions second = base;
  second.resumeFrom = &blob;
  const FuzzReport resumed = fuzzMutualExclusion(sys, second);
  ASSERT_TRUE(resumed.witness.has_value());
  EXPECT_EQ(resumed.witness->seed, ref.witness->seed);
  EXPECT_EQ(resumed.witness->schedule, ref.witness->schedule);
  EXPECT_EQ(resumed.witness->minimized, ref.witness->minimized);
  EXPECT_EQ(resumed.verdict, Verdict::Violation);
  if (workers == 1) {
    // Ascending single-worker scans are fully deterministic, so every
    // counter must line up too (multi-worker skipping is timing-
    // dependent even without interrupts; the witness contract is not).
    EXPECT_EQ(resumed.schedulesRun, ref.schedulesRun);
    EXPECT_EQ(resumed.completedRuns, ref.completedRuns);
    EXPECT_EQ(resumed.violatingSeeds, ref.violatingSeeds);
    EXPECT_EQ(resumed.totalReorderings, ref.totalReorderings);
  }
}

TEST(FuzzControlTest, InterruptResumeIsWitnessIdenticalSingleWorker) {
  fuzzInterruptResumeRoundTrip(1);
}

TEST(FuzzControlTest, InterruptResumeIsWitnessIdenticalFourWorkers) {
  fuzzInterruptResumeRoundTrip(4);
}

TEST(FuzzControlTest, ResumeRejectsChangedOptionsOrWorkerCount) {
  const sim::System sys = strippedGt2();
  util::CancelToken tok;
  tok.cancel();
  FuzzOptions opts;
  opts.seeds = 100;
  opts.control.cancel = &tok;
  std::string blob;
  opts.checkpointOut = &blob;
  ASSERT_TRUE(fuzzMutualExclusion(sys, opts).capped());
  ASSERT_FALSE(blob.empty());

  FuzzOptions moreSeeds;
  moreSeeds.seeds = 200;
  moreSeeds.resumeFrom = &blob;
  EXPECT_THROW(fuzzMutualExclusion(sys, moreSeeds), util::CheckError);

  FuzzOptions moreWorkers;
  moreWorkers.seeds = 100;
  moreWorkers.workers = 2;  // stride positions are worker-count-specific
  moreWorkers.resumeFrom = &blob;
  EXPECT_THROW(fuzzMutualExclusion(sys, moreWorkers), util::CheckError);
}

// ---------------------------------------------------------------------------
// reorderBudget = 0 ⇒ FIFO commit order (TSO-equivalent behaviour).
// ---------------------------------------------------------------------------

TEST(ReorderBoundTest, ZeroBudgetIsTsoEquivalentOnLitmusMP) {
  // Message passing is the canonical TSO/PSO separator: with the two
  // writes unfenced, PSO lets the flag overtake the data while TSO's
  // FIFO buffer forbids it.  A zero reorder budget must therefore pin
  // every PSO run inside the exhaustive TSO outcome set, and lifting
  // the budget must escape it.
  const sim::System pso = sim::litmusMP(MemoryModel::PSO, false);
  const auto tsoOutcomes =
      sim::explore(sim::litmusMP(MemoryModel::TSO, false)).outcomes;
  const auto psoOutcomes = sim::explore(pso).outcomes;
  ASSERT_GT(psoOutcomes.size(), tsoOutcomes.size())
      << "MP no longer separates TSO from PSO; pick another litmus";

  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    sim::Config cfg = sim::initialConfig(pso);
    util::Rng rng(seed);
    sim::ReorderBoundOptions rbo;
    rbo.reorderBudget = 0;
    const sim::ScheduleRunResult run =
        sim::runReorderBounded(pso, cfg, rng, rbo);
    ASSERT_TRUE(run.completed) << "seed " << seed;
    EXPECT_EQ(run.reorderings, 0) << "seed " << seed;
    EXPECT_TRUE(tsoOutcomes.count(cfg.returnValues()))
        << "seed " << seed << ": budget-0 PSO run escaped the TSO set";
  }

  // The overtake window is narrow, so escapes are rare (~2-3 per
  // thousand seeds; the first lies below 1000 for this deterministic
  // Rng).  One escape is all the discrimination needs.
  bool escaped = false;
  for (std::uint64_t seed = 1; seed <= 1000 && !escaped; ++seed) {
    sim::Config cfg = sim::initialConfig(pso);
    util::Rng rng(seed);
    sim::ReorderBoundOptions rbo;
    rbo.reorderBudget = -1;  // unlimited
    if (sim::runReorderBounded(pso, cfg, rng, rbo).completed) {
      escaped = escaped || tsoOutcomes.count(cfg.returnValues()) == 0;
    }
  }
  EXPECT_TRUE(escaped)
      << "unlimited budget never reached a PSO-only outcome in 1000 seeds";
}

TEST(ReorderBoundTest, ZeroBudgetStaysInTsoSetOnWriteBatch) {
  const sim::System pso = sim::litmusWriteBatch(MemoryModel::PSO);
  const auto tsoOutcomes =
      sim::explore(sim::litmusWriteBatch(MemoryModel::TSO)).outcomes;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    sim::Config cfg = sim::initialConfig(pso);
    util::Rng rng(seed);
    sim::ReorderBoundOptions rbo;
    rbo.reorderBudget = 0;
    const sim::ScheduleRunResult run =
        sim::runReorderBounded(pso, cfg, rng, rbo);
    ASSERT_TRUE(run.completed) << "seed " << seed;
    EXPECT_TRUE(tsoOutcomes.count(cfg.returnValues())) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Fence-strip coverage gap: the suite above only ever stripped fence
// index 0.  Strip *every* index of GT_3 and check the injector, the
// exhaustive ground truth, and the fuzzer agree at each one.
// ---------------------------------------------------------------------------

TEST(InjectTest, EveryFenceIndexOfGt3StripsCleanly) {
  const sim::System base =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(3)).sys;
  const int total = countFences(base);
  ASSERT_GT(total, 0);
  ASSERT_EQ(total % base.n(), 0) << "fence count must be per-program uniform";
  const int perProgram = total / base.n();
  bool anyViolating = false;
  for (int k = 0; k < perProgram; ++k) {
    sim::System sys = base;
    ASSERT_EQ(stripFence(sys, k), sys.n()) << "index " << k;
    EXPECT_EQ(countFences(sys), total - sys.n()) << "index " << k;
    // Exhaustive ground truth first — it must not be capped, or the
    // fuzz comparison below would be against an unknown answer.
    const sim::ExploreResult ground = sim::explore(sys, {});
    ASSERT_FALSE(ground.capped()) << "index " << k;
    FuzzOptions opts;
    opts.seeds = 2048;
    const FuzzReport rep = fuzzMutualExclusion(sys, opts);
    if (rep.witness.has_value()) {
      // A fuzz witness is a proof: the ground truth must agree and the
      // minimized schedule must replay to an occupancy-2 state.
      EXPECT_TRUE(ground.mutexViolation) << "index " << k;
      EXPECT_GE(maxOccupancyOnReplay(sys, rep.witness->minimized), 2)
          << "index " << k;
      anyViolating = true;
    } else {
      // No witness in 2048 seeds: the fuzzer is under-approximate, so
      // the only sound cross-check is verdict sanity.
      EXPECT_NE(rep.verdict, Verdict::Violation) << "index " << k;
    }
  }
  EXPECT_TRUE(anyViolating)
      << "no stripped index of GT_3 produced a violation — the injector "
         "is not planting real bugs";
}

TEST(InjectTest, CountFencesIsZeroOnFenceFreePrograms) {
  // A system whose programs contain no Fence at all: countFences must
  // return exactly 0 (not crash, not miscount no-op slots), and
  // stripFence must refuse every index.
  sim::System sys;
  sys.model = MemoryModel::PSO;
  const sim::Reg c = sys.layout.alloc(sim::kNoOwner, "C");
  for (int p = 0; p < 2; ++p) {
    sim::ProgramBuilder b("fencefree#" + std::to_string(p));
    const sim::LocalId ret = b.local("ret");
    b.writeReg(c, b.imm(p + 1));
    b.csBegin();
    b.readReg(ret, c);
    b.csEnd();
    b.ret(b.L(ret));
    sys.programs.push_back(b.build());
  }
  EXPECT_EQ(countFences(sys), 0);
  EXPECT_EQ(stripFence(sys, 0), 0);
}

// ---------------------------------------------------------------------------
// Crash-aware fuzzing: the scan draws crash moves under the budget, the
// minimized witness keeps its crash element and stays byte-identical
// across worker counts, and the checkpoint fingerprint pins the crash
// configuration.
// ---------------------------------------------------------------------------

sim::System brokenRecoverableSc(int crashBudget) {
  sim::System sys = core::buildCountSystem(MemoryModel::SC, 2,
                                           core::brokenRecoverableTasFactory())
                        .sys;
  sys.crashBudget = crashBudget;
  return sys;
}

TEST(CrashFuzzTest, MinimizedCrashWitnessIsIdenticalAcrossWorkers) {
  // The broken-recovery lock only violates via a crash, so the witness
  // must contain one — and ddmin must preserve it while the worker
  // count must not perturb a single byte of the minimized schedule.
  const sim::System sys = brokenRecoverableSc(1);
  std::string reference;
  std::uint64_t referenceSeed = 0;
  for (int workers : {1, 2, 4}) {
    FuzzOptions opts;
    opts.seeds = 4096;
    opts.workers = workers;
    opts.crashProb = 0.05;
    const FuzzReport rep = fuzzMutualExclusion(sys, opts);
    ASSERT_TRUE(rep.witness.has_value()) << "workers " << workers;
    EXPECT_GE(rep.witness->occupancy, 2) << "workers " << workers;
    const std::string rendered = scheduleToString(sys, rep.witness->minimized);
    EXPECT_NE(rendered.find("crash"), std::string::npos)
        << "workers " << workers << ": minimized witness lost its crash:\n"
        << rendered;
    EXPECT_GE(maxOccupancyOnReplay(sys, rep.witness->minimized), 2)
        << "workers " << workers;
    if (reference.empty()) {
      reference = rendered;
      referenceSeed = rep.witness->seed;
    } else {
      EXPECT_EQ(rep.witness->seed, referenceSeed) << "workers " << workers;
      EXPECT_EQ(rendered, reference) << "workers " << workers;
    }
  }
}

TEST(CrashFuzzTest, ZeroCrashProbabilityNeverCrashesAndStaysLegacy) {
  // With crashProb left at 0 the scan must be byte-identical to a scan
  // of the legacy (budget-0) system: no crash draw, no witness (the
  // broken lock is correct failure-free), same schedule counts.
  const sim::System budgeted = brokenRecoverableSc(1);
  FuzzOptions opts;
  opts.seeds = 512;
  const FuzzReport a = fuzzMutualExclusion(budgeted, opts);
  EXPECT_EQ(a.verdict, Verdict::Pass);
  EXPECT_FALSE(a.witness.has_value());

  const FuzzReport b = fuzzMutualExclusion(brokenRecoverableSc(0), opts);
  EXPECT_EQ(b.verdict, a.verdict);
  EXPECT_EQ(b.schedulesRun, a.schedulesRun);
  EXPECT_EQ(b.completedRuns, a.completedRuns);
  EXPECT_EQ(b.totalReorderings, a.totalReorderings);
}

TEST(CrashFuzzTest, CheckpointRejectsCrossBudgetArchOrCrashProbResume) {
  const sim::System sys = brokenRecoverableSc(1);
  util::CancelToken tok;
  tok.cancel();
  FuzzOptions opts;
  opts.seeds = 256;
  opts.crashProb = 0.05;
  opts.control.cancel = &tok;
  std::string blob;
  opts.checkpointOut = &blob;
  ASSERT_EQ(fuzzMutualExclusion(sys, opts).verdict, Verdict::Interrupted);
  ASSERT_FALSE(blob.empty());

  FuzzOptions resume;
  resume.seeds = 256;
  resume.crashProb = 0.05;
  resume.resumeFrom = &blob;

  // Different crash probability: a different schedule distribution.
  FuzzOptions changedProb = resume;
  changedProb.crashProb = 0.25;
  EXPECT_THROW(fuzzMutualExclusion(sys, changedProb), util::CheckError);

  // Different crash budget or arch: a different system fingerprint.
  EXPECT_THROW(fuzzMutualExclusion(brokenRecoverableSc(2), resume),
               util::CheckError);
  sim::System ccSys = brokenRecoverableSc(1);
  ccSys.arch = sim::Arch::CC;
  EXPECT_THROW(fuzzMutualExclusion(ccSys, resume), util::CheckError);

  // The matching configuration resumes cleanly to the reference scan.
  const FuzzReport resumed = fuzzMutualExclusion(sys, resume);
  FuzzOptions clean;
  clean.seeds = 256;
  clean.crashProb = 0.05;
  const FuzzReport ref = fuzzMutualExclusion(sys, clean);
  EXPECT_EQ(resumed.verdict, ref.verdict);
  EXPECT_EQ(resumed.schedulesRun, ref.schedulesRun);
  EXPECT_EQ(resumed.witness.has_value(), ref.witness.has_value());
  if (resumed.witness && ref.witness) {
    EXPECT_EQ(resumed.witness->seed, ref.witness->seed);
    EXPECT_EQ(resumed.witness->minimized, ref.witness->minimized);
  }
}

}  // namespace
}  // namespace fencetrade::check
