// The standing corpus's own contract (unique entry names, mirrors that
// match the built systems, budgets that actually reach the expected
// verdicts) plus the RME tier's focused assertions: crash budget 0 is
// byte-identical to the legacy failure-free build, positive budgets
// strictly grow the space without breaking recoverable locks, the arch
// knob never changes exploration, plain TAS strands the lock under a
// crash (a liveness contrast, not a safety one), and the deterministic
// lock_doctor-style RME JSON is golden-stable and worker-invariant.
#include "check/corpus.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/jsonio.h"
#include "check/verdict.h"
#include "core/caslocks.h"
#include "core/objects.h"
#include "core/recoverable.h"
#include "sim/explore.h"
#include "sim/schedule.h"
#include "sim/trace_export.h"

namespace fencetrade::check {
namespace {

using sim::MemoryModel;

sim::System rmeSystem(const core::LockFactory& factory, MemoryModel m, int n,
                      int crashBudget,
                      sim::Arch arch = sim::Arch::Combined) {
  sim::System sys = core::buildCountSystem(m, n, factory).sys;
  sys.crashBudget = crashBudget;
  sys.arch = arch;
  return sys;
}

// ---------------------------------------------------------------------------
// Corpus shape: names, mirrors, and budget adequacy.
// ---------------------------------------------------------------------------

TEST(CorpusShapeTest, EntryNamesAreUniqueCorpusWide) {
  std::set<std::string> seen;
  for (const CorpusEntry& e : conformanceCorpus(false)) {
    EXPECT_TRUE(seen.insert(e.name).second) << "duplicate entry " << e.name;
  }
}

TEST(CorpusShapeTest, CrashAndArchMirrorsMatchTheBuiltSystem) {
  // The entry-level crashBudget/arch mirrors exist so reports can
  // introspect entries without building them — they must never drift
  // from what the factory actually bakes into the System.
  for (const CorpusEntry& e : conformanceCorpus(false)) {
    const sim::System sys = e.make();
    EXPECT_EQ(sys.crashBudget, e.crashBudget) << e.name;
    EXPECT_EQ(sys.arch, e.arch) << e.name;
    if (e.crashBudget == 0 && e.arch == sim::Arch::Combined) {
      // Legacy entries carry the System defaults untouched.
      EXPECT_EQ(sys.crashBudget, 0) << e.name;
      EXPECT_EQ(sys.arch, sim::Arch::Combined) << e.name;
    }
  }
}

TEST(CorpusShapeTest, QuickBudgetsReachTheExpectedVerdict) {
  // Every quick (sanitizer-CI) entry must be decidable within its own
  // state budget on the plain sequential engine: Pass entries explore
  // to completion without a violation, Violation entries actually reach
  // one.  An entry that needs more states than it budgets is dead
  // weight in CI.
  for (const CorpusEntry& e : conformanceCorpus(true)) {
    sim::ExploreOptions opts;
    opts.maxStates = e.maxStates;
    const sim::ExploreResult res = sim::explore(e.make(), opts);
    switch (e.expected) {
      case Verdict::Pass:
        EXPECT_FALSE(res.capped()) << e.name;
        EXPECT_FALSE(res.mutexViolation) << e.name;
        break;
      case Verdict::Violation:
        EXPECT_TRUE(res.mutexViolation) << e.name;
        break;
      default:
        ADD_FAILURE() << e.name << ": quick corpus must be decisive";
    }
  }
}

TEST(CorpusShapeTest, QuickCorpusCoversTheRmeAndArchTier) {
  // The sanitizer subset must keep the RME canaries: at least one
  // positive-budget Pass, the broken-recovery Violation, and both
  // non-default arch variants.
  bool crashPass = false, crashViolation = false, cc = false, dsm = false;
  for (const CorpusEntry& e : conformanceCorpus(true)) {
    if (e.crashBudget > 0 && e.expected == Verdict::Pass) crashPass = true;
    if (e.crashBudget > 0 && e.expected == Verdict::Violation) {
      crashViolation = true;
    }
    if (e.arch == sim::Arch::CC) cc = true;
    if (e.arch == sim::Arch::DSM) dsm = true;
  }
  EXPECT_TRUE(crashPass);
  EXPECT_TRUE(crashViolation);
  EXPECT_TRUE(cc);
  EXPECT_TRUE(dsm);
}

// ---------------------------------------------------------------------------
// The RME tier's semantic contract.
// ---------------------------------------------------------------------------

TEST(RmeTierTest, BudgetZeroIsByteIdenticalToTheLegacyFactoryBuild) {
  // Zeroing the crash budget on a corpus crash entry must reproduce the
  // never-configured factory build exactly — same states, same
  // outcomes, same witness bytes (there is none), same stop reason.
  const sim::System legacy =
      core::buildCountSystem(MemoryModel::PSO, 2,
                             core::recoverableTasFactory())
          .sys;
  bool found = false;
  for (const CorpusEntry& e : conformanceCorpus(true)) {
    if (e.name != "rtas/PSO/n2/c1") continue;
    found = true;
    sim::System zeroed = e.make();
    zeroed.crashBudget = 0;
    zeroed.arch = sim::Arch::Combined;
    const sim::ExploreResult a = sim::explore(zeroed, {});
    const sim::ExploreResult b = sim::explore(legacy, {});
    EXPECT_EQ(a.statesVisited, b.statesVisited);
    EXPECT_EQ(a.outcomes, b.outcomes);
    EXPECT_EQ(a.mutexViolation, b.mutexViolation);
    EXPECT_EQ(a.maxCsOccupancy, b.maxCsOccupancy);
    EXPECT_EQ(a.witness, b.witness);
    EXPECT_EQ(a.stopReason, b.stopReason);
  }
  EXPECT_TRUE(found) << "the quick corpus lost its rtas/PSO/n2/c1 entry";
}

TEST(RmeTierTest, CrashBudgetStrictlyGrowsTheStateSpace) {
  // Each extra allowed crash adds reachable states (the crash move plus
  // every post-recovery interleaving) while the lock stays safe.
  std::uint64_t prev = 0;
  for (int budget : {0, 1, 2}) {
    const sim::System sys =
        rmeSystem(core::recoverableTasFactory(), MemoryModel::PSO, 2, budget);
    const sim::ExploreResult res = sim::explore(sys, {});
    ASSERT_FALSE(res.capped()) << "budget " << budget;
    EXPECT_FALSE(res.mutexViolation) << "budget " << budget;
    EXPECT_GT(res.statesVisited, prev) << "budget " << budget;
    prev = res.statesVisited;
  }
}

TEST(RmeTierTest, ArchReclassificationNeverChangesExploration) {
  // Arch selects which RMR accounting Step::remote reports; it must be
  // invisible to the transition system itself.
  const sim::ExploreResult ref = sim::explore(
      rmeSystem(core::recoverableTasFactory(), MemoryModel::PSO, 2, 1), {});
  ASSERT_FALSE(ref.capped());
  for (sim::Arch arch : {sim::Arch::CC, sim::Arch::DSM}) {
    const sim::ExploreResult res = sim::explore(
        rmeSystem(core::recoverableTasFactory(), MemoryModel::PSO, 2, 1,
                  arch),
        {});
    EXPECT_EQ(res.statesVisited, ref.statesVisited) << sim::archName(arch);
    EXPECT_EQ(res.outcomes, ref.outcomes) << sim::archName(arch);
    EXPECT_EQ(res.mutexViolation, ref.mutexViolation) << sim::archName(arch);
  }
}

TEST(RmeTierTest, PlainTasStrandsTheLockUnderACrashButStaysMutexSafe) {
  // A crashed TAS holder never releases, so nobody else can *enter* the
  // critical section: safety trivially holds, but the stranded lock
  // shows up as stuck states in the liveness graph.  This is the
  // contrast that motivates recoverable locks — and exactly why the
  // corpus keeps tas/PSO/n2/c1 as a safety Pass with its liveness leg
  // pinned here instead of in the differential.
  const sim::System crashed =
      rmeSystem(core::tasFactory(), MemoryModel::PSO, 2, 1);
  const sim::ExploreResult res = sim::explore(crashed, {});
  ASSERT_FALSE(res.capped());
  EXPECT_FALSE(res.mutexViolation);

  const sim::LivenessResult live = sim::checkLiveness(crashed, {});
  ASSERT_TRUE(live.complete());
  EXPECT_FALSE(live.allCanTerminate);
  EXPECT_GT(live.stuckStates, 0u);

  // Failure-free, the same lock terminates from everywhere.
  const sim::LivenessResult clean = sim::checkLiveness(
      rmeSystem(core::tasFactory(), MemoryModel::PSO, 2, 0), {});
  ASSERT_TRUE(clean.complete());
  EXPECT_TRUE(clean.allCanTerminate);
  EXPECT_EQ(clean.stuckStates, 0u);
}

TEST(RmeTierTest, RecoverableLocksTerminateUnderCrashes) {
  // The recoverable locks' whole point: with crashes allowed, every
  // reachable state still has a path on which all processes finish.
  for (const core::LockFactory& factory :
       {core::recoverableTasFactory(), core::recoverableTournamentFactory()}) {
    const sim::System sys = rmeSystem(factory, MemoryModel::PSO, 2, 1);
    const sim::LivenessResult live = sim::checkLiveness(sys, {});
    ASSERT_TRUE(live.complete());
    EXPECT_TRUE(live.allCanTerminate);
    EXPECT_EQ(live.stuckStates, 0u);
  }
}

// ---------------------------------------------------------------------------
// Golden files: the deterministic core of lock_doctor's RME JSON (the
// keys gated behind --crashes/--arch plus the exploration facts) is a
// pure function of (lock, model, n, budget, arch) — worker-count
// invariant and byte-stable.  Regenerate with FENCETRADE_REGEN_GOLDEN=1.
// ---------------------------------------------------------------------------

std::string rmeDoctorJson(const std::string& lockName,
                          const core::LockFactory& factory, MemoryModel m,
                          int n, int crashBudget, sim::Arch arch,
                          int workers) {
  const sim::System sys = rmeSystem(factory, m, n, crashBudget, arch);
  sim::ExploreOptions opts;
  opts.workers = workers;
  const sim::ExploreResult res = sim::explore(sys, opts);

  // Same trace choice as lock_doctor: the witness if the lock is
  // broken, a sequential passage otherwise.
  sim::Execution traced;
  if (res.mutexViolation) {
    traced = sim::replaySchedule(sys, res.witness);
  } else {
    sim::Config cfg = sim::initialConfig(sys);
    std::vector<sim::ProcId> order;
    for (int p = 0; p < n; ++p) order.push_back(p);
    traced = sim::runSequential(sys, cfg, order);
  }
  const sim::StepCounts rmr = sim::countSteps(traced, n);
  const Verdict verdict = res.mutexViolation ? Verdict::Violation
                          : res.capped()     ? Verdict::Inconclusive
                                             : Verdict::Pass;

  std::string out;
  out += '{';
  jsonStr(out, "lock", lockName);
  out += ',';
  jsonStr(out, "model", sim::memoryModelName(m));
  out += ',';
  jsonU64(out, "n", static_cast<unsigned long long>(n));
  out += ',';
  jsonU64(out, "crashBudget", static_cast<unsigned long long>(crashBudget));
  out += ',';
  jsonStr(out, "arch", sim::archName(arch));
  out += ',';
  jsonKey(out, "rmrAccounting");
  out += '{';
  jsonStr(out, "execution", res.mutexViolation ? "witness" : "sequential");
  out += ',';
  jsonU64(out, "rmrsDsm", static_cast<unsigned long long>(rmr.rmrsDsm));
  out += ',';
  jsonU64(out, "rmrsCc", static_cast<unsigned long long>(rmr.rmrsCc));
  out += ',';
  jsonU64(out, "rmrsSelected", static_cast<unsigned long long>(rmr.rmrs));
  out += ',';
  jsonU64(out, "crashSteps", static_cast<unsigned long long>(rmr.crashes));
  out += "},";
  jsonU64(out, "statesVisited", res.statesVisited);
  out += ',';
  jsonBool(out, "mutexViolation", res.mutexViolation);
  out += ',';
  jsonU64(out, "maxCsOccupancy",
          static_cast<unsigned long long>(res.maxCsOccupancy));
  out += ',';
  jsonStr(out, "outcomes", sim::outcomesToString(res.outcomes, res.capped()));
  out += ',';
  jsonStr(out, "verdict", verdictName(verdict));
  out += '}';
  return out;
}

void checkRmeGolden(const std::string& lockName,
                    const core::LockFactory& factory, sim::Arch arch,
                    const std::string& goldenName) {
  // Worker-count invariance first: the pinned keys describe the state
  // space and the deterministic passage, never the parallel engine.
  std::string actual;
  for (int workers : {1, 2, 4}) {
    const std::string j = rmeDoctorJson(lockName, factory, MemoryModel::PSO,
                                        2, /*crashBudget=*/1, arch, workers);
    if (actual.empty()) {
      actual = j;
    } else {
      EXPECT_EQ(j, actual) << goldenName << " with workers=" << workers;
    }
  }
  ASSERT_FALSE(actual.empty());

  const std::string path =
      std::string(FENCETRADE_GOLDEN_DIR) + "/" + goldenName;
  if (std::getenv("FENCETRADE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual << "\n";
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with FENCETRADE_REGEN_GOLDEN=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual + "\n") << "golden drift in " << goldenName;
}

TEST(RmeGoldenTest, RtasCrash1Cc) {
  checkRmeGolden("rtas", core::recoverableTasFactory(), sim::Arch::CC,
                 "rme_rtas_pso_c1_cc.json");
}

TEST(RmeGoldenTest, RtasCrash1Dsm) {
  checkRmeGolden("rtas", core::recoverableTasFactory(), sim::Arch::DSM,
                 "rme_rtas_pso_c1_dsm.json");
}

TEST(RmeGoldenTest, RtournamentCrash1Cc) {
  checkRmeGolden("rtournament", core::recoverableTournamentFactory(),
                 sim::Arch::CC, "rme_rtournament_pso_c1_cc.json");
}

TEST(RmeGoldenTest, RtournamentCrash1Dsm) {
  checkRmeGolden("rtournament", core::recoverableTournamentFactory(),
                 sim::Arch::DSM, "rme_rtournament_pso_c1_dsm.json");
}

TEST(RmeGoldenTest, CcAndDsmGoldensActuallySeparate) {
  // The pair of goldens must disagree on rmrsSelected — otherwise the
  // split accountant collapsed and the CC/DSM separation is gone.
  const std::string cc =
      rmeDoctorJson("rtas", core::recoverableTasFactory(), MemoryModel::PSO,
                    2, 1, sim::Arch::CC, 1);
  const std::string dsm =
      rmeDoctorJson("rtas", core::recoverableTasFactory(), MemoryModel::PSO,
                    2, 1, sim::Arch::DSM, 1);
  EXPECT_NE(cc, dsm);
  EXPECT_NE(cc.find("\"rmrsDsm\""), std::string::npos);
  EXPECT_NE(dsm.find("\"rmrsCc\""), std::string::npos);
}

}  // namespace
}  // namespace fencetrade::check
