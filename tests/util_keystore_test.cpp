// Unit tests for the visited-set storage tiers (util/keystore.h):
// DeltaKeyStore delta round-trips, keyframe fallback, forced-collision
// exactness; AtomicBloomFilter one-sided-error semantics.

#include "util/keystore.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace fencetrade::util {
namespace {

std::uint64_t constantHash(std::string_view) { return 42; }

std::string keyFor(int i) {
  // Long common prefix/suffix with a small varying middle — the shape
  // one schedule step leaves on a serialized Config.
  std::string k(64, 'a');
  k[20] = static_cast<char>('0' + (i % 10));
  k[21] = static_cast<char>('A' + ((i / 10) % 26));
  k[22] = static_cast<char>('A' + ((i / 260) % 26));
  return k;
}

TEST(DeltaKeyStoreTest, DenseIdsInInsertionOrder) {
  DeltaKeyStore store;
  for (int i = 0; i < 100; ++i) {
    const DeltaKeyStore::InsertResult r = store.insert(keyFor(i));
    EXPECT_TRUE(r.fresh) << i;
    EXPECT_EQ(r.id, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(store.size(), 100u);
  // Re-inserting returns the original id without growing the store.
  for (int i = 0; i < 100; ++i) {
    const DeltaKeyStore::InsertResult r = store.insert(keyFor(i));
    EXPECT_FALSE(r.fresh) << i;
    EXPECT_EQ(r.id, static_cast<std::uint32_t>(i));
    EXPECT_EQ(store.find(keyFor(i)), static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(store.size(), 100u);
  EXPECT_EQ(store.find("absent"), DeltaKeyStore::kNoId);
  EXPECT_FALSE(store.contains("absent"));
}

TEST(DeltaKeyStoreTest, DeltaChainsReconstructExactly) {
  DeltaKeyStore store;
  std::vector<std::string> keys;
  std::uint32_t parent = DeltaKeyStore::kNoId;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(keyFor(i));
    const auto r = store.insert(keys.back(), parent);
    ASSERT_TRUE(r.fresh);
    parent = r.id;
  }
  // Similar keys delta-encode; the per-key storage must be far below
  // the raw key bytes.
  EXPECT_GT(store.deltaCount(), 150u);
  EXPECT_LT(store.bytes(), 200u * 64u / 4u);
  EXPECT_EQ(store.bytes(), store.fullBytes() + store.deltaBytes());
  std::string out;
  for (int i = 0; i < 200; ++i) {
    store.reconstruct(static_cast<std::uint32_t>(i), out);
    EXPECT_EQ(out, keys[static_cast<std::size_t>(i)]) << "id " << i;
  }
}

TEST(DeltaKeyStoreTest, KeyframesBreakDeepChains) {
  // A chain far longer than kMaxDepth must be split by forced
  // keyframes: more than one full key stored, every key still exact.
  DeltaKeyStore store;
  std::uint32_t parent = DeltaKeyStore::kNoId;
  const int count = DeltaKeyStore::kMaxDepth * 6;
  for (int i = 0; i < count; ++i) {
    parent = store.insert(keyFor(i), parent).id;
  }
  EXPECT_GE(store.fullBytes(), 2u * 64u);
  EXPECT_GT(store.deltaCount(), 0u);
  std::string out;
  for (int i = 0; i < count; ++i) {
    store.reconstruct(static_cast<std::uint32_t>(i), out);
    EXPECT_EQ(out, keyFor(i)) << "id " << i;
  }
}

TEST(DeltaKeyStoreTest, UnprofitableDiffFallsBackToKeyframe) {
  DeltaKeyStore store;
  const std::uint32_t p = store.insert(std::string(64, 'x')).id;
  // Nothing in common with the parent: the diff would not pay, so the
  // key must be stored as a keyframe (depth 0, no delta bytes).
  store.insert(std::string(64, 'y'), p);
  EXPECT_EQ(store.deltaCount(), 0u);
  EXPECT_EQ(store.deltaBytes(), 0u);
  EXPECT_EQ(store.fullBytes(), 128u);
}

TEST(DeltaKeyStoreTest, ExactUnderForcedHashCollisions) {
  // A constant hash lands every key in one bucket chain; membership
  // must still be decided by full key bytes, never by hash.
  DeltaKeyStore store(&constantHash);
  std::uint32_t parent = DeltaKeyStore::kNoId;
  for (int i = 0; i < 300; ++i) {
    const auto r = store.insert(keyFor(i), parent);
    ASSERT_TRUE(r.fresh) << i;
    parent = r.id;
  }
  EXPECT_EQ(store.size(), 300u);
  std::string out;
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(store.find(keyFor(i)), static_cast<std::uint32_t>(i));
    store.reconstruct(static_cast<std::uint32_t>(i), out);
    EXPECT_EQ(out, keyFor(i));
  }
  EXPECT_FALSE(store.contains(std::string(64, 'z')));
}

TEST(DeltaKeyStoreTest, BinaryAndEmptyKeys) {
  DeltaKeyStore store;
  std::string bin(32, '\0');
  bin[7] = '\x01';
  bin[15] = '\xff';
  const auto r0 = store.insert(bin);
  const auto r1 = store.insert(std::string_view{});
  EXPECT_TRUE(r0.fresh);
  EXPECT_TRUE(r1.fresh);
  EXPECT_NE(r0.id, r1.id);
  // The empty key may be delta-encoded against any parent.
  const auto r2 = store.insert(std::string_view{}, r0.id);
  EXPECT_FALSE(r2.fresh);
  EXPECT_EQ(r2.id, r1.id);
  std::string out;
  store.reconstruct(r0.id, out);
  EXPECT_EQ(out, bin);
  store.reconstruct(r1.id, out);
  EXPECT_TRUE(out.empty());
}

TEST(DeltaKeyStoreTest, SurvivesRehashGrowth) {
  // 5000 entries force several bucket-table doublings; every key keeps
  // its id and reconstructs bit-exactly afterwards.
  DeltaKeyStore store;
  std::uint32_t parent = DeltaKeyStore::kNoId;
  for (int i = 0; i < 5000; ++i) {
    std::string k = keyFor(i % 1000);
    k += std::to_string(i);
    parent = store.insert(k, parent).id;
    ASSERT_EQ(parent, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(store.size(), 5000u);
  std::string out;
  for (int i = 0; i < 5000; i += 97) {
    std::string k = keyFor(i % 1000);
    k += std::to_string(i);
    EXPECT_EQ(store.find(k), static_cast<std::uint32_t>(i));
    store.reconstruct(static_cast<std::uint32_t>(i), out);
    EXPECT_EQ(out, k);
  }
}

// ---------------------------------------------------------------------------
// AtomicBloomFilter
// ---------------------------------------------------------------------------

TEST(AtomicBloomFilterTest, NoFalseNegatives) {
  AtomicBloomFilter bloom(std::uint64_t{1} << 20);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(bloom.insert(keyFor(i) + std::to_string(i))) << i;
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(bloom.contains(keyFor(i) + std::to_string(i))) << i;
  }
  // Re-inserting a present key reports "possibly duplicate".
  EXPECT_FALSE(bloom.insert(keyFor(0) + "0"));
}

TEST(AtomicBloomFilterTest, BitsRoundUpToPowerOfTwo) {
  AtomicBloomFilter tiny(1);  // clamps to the 1024-bit minimum
  EXPECT_EQ(tiny.bytes(), 1024u / 8u);
  AtomicBloomFilter odd(3000);  // rounds up to 4096 bits
  EXPECT_EQ(odd.bytes(), 4096u / 8u);
}

TEST(AtomicBloomFilterTest, SaturatedFilterReportsFalsePositives) {
  // 1024 bits with k=3 saturate after a few hundred keys: fresh keys
  // then read as duplicates.  This is exactly the soundness leak the
  // CompleteLossy stop reason exists for.
  AtomicBloomFilter bloom(1);
  bool falsePositive = false;
  for (int i = 0; i < 5000 && !falsePositive; ++i) {
    const std::string k = "key-" + std::to_string(i);
    if (bloom.contains(k)) falsePositive = true;
    bloom.insert(k);
  }
  EXPECT_TRUE(falsePositive);
}

TEST(AtomicBloomFilterTest, ConstantHashAliasesEveryKey) {
  // With a degenerate hash all keys share the same 3 bits: only the
  // very first insert is "possibly new" — the worst-case collision the
  // INCONCLUSIVE contract must survive.
  AtomicBloomFilter bloom(std::uint64_t{1} << 16, &constantHash);
  EXPECT_TRUE(bloom.insert("first"));
  EXPECT_FALSE(bloom.insert("second"));
  EXPECT_TRUE(bloom.contains("never-inserted"));
}

TEST(AtomicBloomFilterTest, ConcurrentInsertsAreSound) {
  AtomicBloomFilter bloom(std::uint64_t{1} << 22);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bloom, t] {
      for (int i = 0; i < kPerThread; ++i) {
        bloom.insert("t" + std::to_string(t) + "-" + std::to_string(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Concurrency must never lose a bit: every inserted key still reads
  // as present.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; i += 37) {
      EXPECT_TRUE(
          bloom.contains("t" + std::to_string(t) + "-" + std::to_string(i)));
    }
  }
}

}  // namespace
}  // namespace fencetrade::util
