// Engine telemetry: per-worker breakdowns that sum consistently with
// the exploration totals, progress heartbeats, and agreement between
// the always-on telemetry and an attached metrics sink.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/explore.h"
#include "util/metrics.h"

namespace fencetrade::sim {
namespace {

sim::System makeGtSystem(int n) {
  return core::buildCountSystem(sim::MemoryModel::PSO, n,
                                core::gtFactory(2))
      .sys;
}

std::uint64_t sumAdmitted(const ExploreTelemetry& t) {
  std::uint64_t total = 0;
  for (const auto& w : t.workers) total += w.statesAdmitted;
  return total;
}

TEST(ExploreTelemetry, SequentialBreakdownIsConsistent) {
  const System sys = makeGtSystem(2);
  const ExploreResult res = explore(sys);
  ASSERT_FALSE(res.capped());

  ASSERT_EQ(res.telemetry.workers.size(), 1u);
  EXPECT_EQ(sumAdmitted(res.telemetry), res.statesVisited);
  // Sequential DFS: every probe either admits a state or is a dup hit.
  EXPECT_EQ(res.telemetry.dedupProbes,
            res.telemetry.dedupHits + res.statesVisited);
  EXPECT_GT(res.telemetry.peakFrontier, 0u);
  EXPECT_GT(res.telemetry.arenaBytes, 0u);
  EXPECT_GE(res.telemetry.wallSeconds, 0.0);
  EXPECT_EQ(res.telemetry.workers[0].steals, 0u);
  EXPECT_EQ(res.telemetry.workers[0].idleSpins, 0u);
}

TEST(ExploreTelemetry, ParallelWorkersSumToStatesVisited) {
  const System sys = makeGtSystem(3);
  ExploreOptions opts;
  opts.workers = 4;
  const ExploreResult res = explore(sys, opts);
  ASSERT_FALSE(res.capped());

  ASSERT_EQ(res.telemetry.workers.size(), 4u);
  EXPECT_EQ(sumAdmitted(res.telemetry), res.statesVisited);
  std::uint64_t probes = 0, hits = 0;
  for (const auto& w : res.telemetry.workers) {
    probes += w.dedupProbes;
    hits += w.dedupHits;
  }
  EXPECT_EQ(probes, res.telemetry.dedupProbes);
  EXPECT_EQ(hits, res.telemetry.dedupHits);
  // Parallel dedup: a probe admits, hits, or loses an insert race —
  // admitted + hits can therefore only undercount probes.
  EXPECT_LE(res.statesVisited + res.telemetry.dedupHits,
            res.telemetry.dedupProbes);
  EXPECT_GT(res.telemetry.peakFrontier, 0u);
}

TEST(ExploreTelemetry, ProgressHeartbeatFires) {
  const System sys = makeGtSystem(2);
  ExploreOptions opts;
  opts.progressInterval = 64;
  std::vector<ProgressUpdate> updates;
  opts.progress = [&updates](const ProgressUpdate& u) {
    updates.push_back(u);
  };
  const ExploreResult res = explore(sys, opts);

  ASSERT_FALSE(updates.empty());
  EXPECT_GE(res.statesVisited, updates.size() * 64);
  std::uint64_t prev = 0;
  for (const ProgressUpdate& u : updates) {
    EXPECT_EQ(u.statesVisited % 64, 0u);
    EXPECT_GT(u.statesVisited, prev);
    prev = u.statesVisited;
    EXPECT_EQ(u.workers, 1);
    EXPECT_LE(u.dedupHits, u.dedupProbes);
  }
}

TEST(ExploreTelemetry, ParallelProgressHeartbeatFires) {
  const System sys = makeGtSystem(3);
  ExploreOptions opts;
  opts.workers = 4;
  opts.progressInterval = 1024;
  std::atomic<int> fired{0};
  opts.progress = [&fired](const ProgressUpdate& u) {
    EXPECT_EQ(u.workers, 4);
    EXPECT_GT(u.statesVisited, 0u);
    fired.fetch_add(1, std::memory_order_relaxed);
  };
  const ExploreResult res = explore(sys, opts);
  ASSERT_FALSE(res.capped());
  EXPECT_GT(fired.load(), 0);
}

TEST(ExploreTelemetry, MetricsSinkMatchesTelemetry) {
  const System sys = makeGtSystem(2);
  util::MetricsRegistry reg;
  ExploreOptions opts;
  opts.metrics = &reg;
  const ExploreResult res = explore(sys, opts);

#ifndef FENCETRADE_NO_METRICS
  const util::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("explore.states"), res.statesVisited);
  EXPECT_EQ(snap.counter("explore.dedup.probes"),
            res.telemetry.dedupProbes);
  EXPECT_EQ(snap.counter("explore.dedup.hits"), res.telemetry.dedupHits);
  EXPECT_EQ(snap.counter("explore.expansions"),
            res.telemetry.workers[0].expansions);
  EXPECT_EQ(snap.gauge("explore.arena_bytes"),
            static_cast<std::int64_t>(res.telemetry.arenaBytes));
#else
  (void)res;
#endif
}

TEST(ExploreTelemetry, ParallelMetricsSinkMatchesTelemetry) {
  const System sys = makeGtSystem(3);
  util::MetricsRegistry reg;
  ExploreOptions opts;
  opts.workers = 4;
  opts.metrics = &reg;
  const ExploreResult res = explore(sys, opts);
  ASSERT_FALSE(res.capped());

#ifndef FENCETRADE_NO_METRICS
  const util::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("explore.states"), res.statesVisited);
  EXPECT_EQ(snap.counter("explore.dedup.probes"),
            res.telemetry.dedupProbes);
  EXPECT_EQ(snap.counter("explore.dedup.hits"), res.telemetry.dedupHits);
  std::uint64_t steals = 0;
  for (const auto& w : res.telemetry.workers) steals += w.steals;
  EXPECT_EQ(snap.counter("explore.steals"), steals);
#else
  (void)res;
#endif
}

TEST(ExploreTelemetry, SharedRegistryAccumulatesAcrossRuns) {
  const System sys = makeGtSystem(2);
  util::MetricsRegistry reg;
  ExploreOptions opts;
  opts.metrics = &reg;
  const ExploreResult first = explore(sys, opts);
  const ExploreResult second = explore(sys, opts);

#ifndef FENCETRADE_NO_METRICS
  EXPECT_EQ(reg.snapshot().counter("explore.states"),
            first.statesVisited + second.statesVisited);
#else
  (void)first;
  (void)second;
#endif
}

TEST(LivenessTelemetry, SequentialBreakdownIsConsistent) {
  const System sys = makeGtSystem(2);
  const LivenessResult res = checkLiveness(sys);
  ASSERT_TRUE(res.complete());

  ASSERT_EQ(res.telemetry.workers.size(), 1u);
  EXPECT_EQ(sumAdmitted(res.telemetry), res.states);
  EXPECT_EQ(res.telemetry.dedupProbes,
            res.telemetry.dedupHits + res.states);
  EXPECT_GT(res.telemetry.arenaBytes, 0u);
}

TEST(LivenessTelemetry, ParallelWorkersSumToStates) {
  const System sys = makeGtSystem(2);
  LivenessOptions opts;
  opts.workers = 4;
  const LivenessResult res = checkLiveness(sys, opts);
  ASSERT_TRUE(res.complete());

  ASSERT_EQ(res.telemetry.workers.size(), 4u);
  EXPECT_EQ(sumAdmitted(res.telemetry), res.states);
}

TEST(LivenessTelemetry, CappedRunStillReportsTelemetry) {
  const System sys = makeGtSystem(2);
  LivenessOptions opts;
  opts.maxStates = 50;
  const LivenessResult res = checkLiveness(sys, opts);
  ASSERT_FALSE(res.complete());
  EXPECT_GT(sumAdmitted(res.telemetry), 0u);
  EXPECT_GT(res.telemetry.dedupProbes, 0u);
}

TEST(LivenessTelemetry, MetricsSinkSharedWithExplore) {
  // One registry serves both engines: the names are a shared union, so
  // whichever runs first freezes a layout the other can reuse.
  const System sys = makeGtSystem(2);
  util::MetricsRegistry reg;
  ExploreOptions eopts;
  eopts.metrics = &reg;
  const ExploreResult er = explore(sys, eopts);
  LivenessOptions lopts;
  lopts.metrics = &reg;
  const LivenessResult lr = checkLiveness(sys, lopts);
  ASSERT_TRUE(lr.complete());

#ifndef FENCETRADE_NO_METRICS
  EXPECT_EQ(reg.snapshot().counter("explore.states"),
            er.statesVisited + lr.states);
#else
  (void)er;
#endif
}

TEST(OutcomesToString, PartialRenderingIsExplicit) {
  std::set<std::vector<Value>> outcomes;
  outcomes.insert({1, 2});
  const std::string complete = outcomesToString(outcomes);
  const std::string partial = outcomesToString(outcomes, /*partial=*/true);
  EXPECT_EQ(complete.find("PARTIAL"), std::string::npos);
  EXPECT_NE(partial.find("PARTIAL"), std::string::npos);
  EXPECT_NE(partial.find("{(1,2)}"), std::string::npos);
}

TEST(OutcomesToString, CappedExploreRendersAsPartial) {
  const System sys = makeGtSystem(2);
  ExploreOptions opts;
  opts.maxStates = 20;
  opts.checkMutualExclusion = false;
  const ExploreResult res = explore(sys, opts);
  ASSERT_TRUE(res.capped());
  EXPECT_NE(outcomesToString(res.outcomes, res.capped()).find("PARTIAL"),
            std::string::npos);
}

}  // namespace
}  // namespace fencetrade::sim
