#include "encoding/encoder.h"

#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "sim/builder.h"
#include "util/check.h"
#include "util/permutation.h"

namespace fencetrade::enc {
namespace {

using core::bakeryFactory;
using core::buildCountSystem;
using core::gtFactory;
using sim::MemoryModel;

TEST(EncoderTest, SingleWriterProducesCanonicalCode) {
  // write A; fence; return 0 — the construction yields exactly
  // proceed | commit | proceed | proceed (hand-derived in
  // tests/enc_decoder_test.cpp FullSingleProcessCode).
  sim::System sys;
  sys.model = MemoryModel::PSO;
  sim::Reg a = sys.layout.alloc(sim::kNoOwner, "A");
  sim::ProgramBuilder b("writer");
  b.writeRegImm(a, 1);
  b.fence();
  b.retImm(0);
  sys.programs.push_back(b.build());

  Encoder enc(&sys);
  auto res = enc.encode({0});
  EXPECT_EQ(res.stacks[0].toString(),
            "[proceed | commit | proceed | proceed]");
  EXPECT_EQ(res.iterations, 4);
  EXPECT_TRUE(res.finalDecode.config.procs[0].final);
}

TEST(EncoderTest, CountOverBakeryIdentityPermutation) {
  const int n = 3;
  auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
  Encoder enc(&os.sys);
  auto res = enc.encode(util::identityPermutation(n));
  for (int k = 0; k < n; ++k) {
    EXPECT_EQ(res.finalDecode.config.procs[k].retval, k);
  }
  EXPECT_GT(res.stackStats.commands, 0);
  EXPECT_GT(res.counts.fences, 0);
}

TEST(EncoderTest, AllPermutationsOfThreeReturnTheirPositions) {
  const int n = 3;
  for (const auto& pi : util::allPermutations(n)) {
    auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
    Encoder enc(&os.sys);
    auto res = enc.encode(pi);
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(res.finalDecode.config.procs[pi[k]].retval, k);
    }
  }
}

TEST(EncoderTest, DistinctPermutationsYieldDistinctCodes) {
  // The heart of the counting argument: n! permutations -> n! codes.
  const int n = 3;
  std::set<std::string> codes;
  for (const auto& pi : util::allPermutations(n)) {
    auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
    Encoder enc(&os.sys);
    auto res = enc.encode(pi);
    std::string serialized;
    for (const auto& st : res.stacks) serialized += st.toString() + ";";
    codes.insert(serialized);
  }
  EXPECT_EQ(codes.size(), 6u);
}

TEST(EncoderTest, PermutationReconstructibleFromCode) {
  // Decode the final stacks from scratch; the order of return values
  // recovers π (the decoder receives only the code, not π).
  const int n = 4;
  util::Rng rng(5);
  for (int rep = 0; rep < 3; ++rep) {
    auto pi = util::randomPermutation(n, rng);
    auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
    Encoder enc(&os.sys);
    auto res = enc.encode(pi);

    Decoder dec(&os.sys);
    auto replay = dec.decode(res.stacks);
    util::Permutation recovered(n);
    for (int p = 0; p < n; ++p) {
      ASSERT_TRUE(replay.config.procs[p].final);
      recovered[static_cast<std::size_t>(
          replay.config.procs[p].retval)] = p;
    }
    EXPECT_EQ(recovered, pi) << "rep " << rep;
  }
}

TEST(EncoderTest, WorksOverGtAndTournament) {
  const int n = 4;
  util::Rng rng(11);
  auto pi = util::randomPermutation(n, rng);
  for (int f : {1, 2}) {
    auto os = buildCountSystem(MemoryModel::PSO, n, gtFactory(f));
    Encoder enc(&os.sys);
    auto res = enc.encode(pi);
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(res.finalDecode.config.procs[pi[k]].retval, k)
          << "f=" << f;
    }
  }
}

TEST(EncoderTest, RejectsNonPermutation) {
  auto os = buildCountSystem(MemoryModel::PSO, 3, bakeryFactory());
  Encoder enc(&os.sys);
  EXPECT_THROW(enc.encode({0, 0, 1}), util::CheckError);
  EXPECT_THROW(enc.encode({0, 1}), util::CheckError);
}

TEST(EncoderTest, StatsAccounting) {
  const int n = 4;
  auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
  Encoder enc(&os.sys);
  auto res = enc.encode(util::identityPermutation(n));
  // One command added per iteration.
  EXPECT_EQ(res.stackStats.commands, res.iterations);
  // Every execution has fences and remote steps.
  EXPECT_GT(res.counts.fences, 0);
  EXPECT_GT(res.counts.rmrs, 0);
  EXPECT_GT(res.codeBits(), 0.0);
  // Value sum at least the number of commands (each value >= 1).
  EXPECT_GE(res.stackStats.valueSum, res.stackStats.commands);
}

}  // namespace
}  // namespace fencetrade::enc
