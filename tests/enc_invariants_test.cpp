// Lemma 5.1 / Claim 5.2 checked at every construction iteration, and the
// projection property (I7) on final codes.
#include "encoding/invariants.h"

#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "encoding/encoder.h"
#include "util/check.h"
#include "util/permutation.h"

namespace fencetrade::enc {
namespace {

using core::bakeryFactory;
using core::gtFactory;
using sim::MemoryModel;

using Builder = core::OrderingSystem (*)(MemoryModel, int,
                                         const core::LockFactory&);

struct Case {
  const char* name;
  Builder build;
  int f;  // 0 = bakery
};

class InvariantsPerSystem : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    Systems, InvariantsPerSystem,
    ::testing::Values(Case{"count_bakery", &core::buildCountSystem, 0},
                      Case{"count_gt2", &core::buildCountSystem, 2},
                      Case{"fai_bakery", &core::buildFaiSystem, 0},
                      Case{"queue_bakery", &core::buildQueueSystem, 0}),
    [](const auto& paramInfo) { return std::string(paramInfo.param.name); });

TEST_P(InvariantsPerSystem, HoldAtEveryIterationForRandomPermutations) {
  const int n = 4;
  util::Rng rng(21);
  for (int rep = 0; rep < 2; ++rep) {
    auto pi = util::randomPermutation(n, rng);
    auto os = GetParam().build(
        MemoryModel::PSO, n,
        GetParam().f == 0 ? bakeryFactory() : gtFactory(GetParam().f));
    Encoder enc(&os.sys);
    EncodeOptions opts;
    opts.checkInvariants = true;  // throws on any violation
    EXPECT_NO_THROW(enc.encode(pi, opts)) << "rep " << rep;
  }
}

TEST(InvariantsTest, ProjectionPropertyOnFinalCode) {
  const int n = 4;
  util::Rng rng(33);
  auto pi = util::randomPermutation(n, rng);
  auto os = core::buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
  Encoder enc(&os.sys);
  auto res = enc.encode(pi);
  for (int k = 0; k < n; ++k) {
    EXPECT_NO_THROW(checkProjectionInvariant(os.sys, pi, res.stacks, k))
        << "prefix " << k;
  }
}

TEST(InvariantsTest, ProjectionPropertyAllPermutationsN3) {
  const int n = 3;
  for (const auto& pi : util::allPermutations(n)) {
    auto os = core::buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
    Encoder enc(&os.sys);
    auto res = enc.encode(pi);
    for (int k = 0; k < n; ++k) {
      EXPECT_NO_THROW(checkProjectionInvariant(os.sys, pi, res.stacks, k));
    }
  }
}

TEST(InvariantsTest, CheckerRejectsCorruptedStacks) {
  // Sanity: the checker actually fires.  Encode, then corrupt a stack
  // so I10 is violated (commit directly below wait-read-finish broken
  // by inserting a proceed between them is fine, but a wait-read-finish
  // below a commit is not).
  const int n = 3;
  auto os = core::buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
  Encoder enc(&os.sys);
  auto res = enc.encode(util::identityPermutation(n));

  StackSequence corrupted = res.stacks;
  corrupted[0].pushTop(Command::waitReadFinish(1));
  corrupted[0].pushTop(Command::waitReadFinish(1));  // WRF below WRF: I10

  Decoder dec(&os.sys);
  auto decRes = dec.decode(corrupted,
                           /*maxSteps=*/1 << 20);
  EXPECT_THROW(checkConstructionInvariants(os.sys,
                                           util::identityPermutation(n),
                                           corrupted, decRes),
               util::CheckError);
}

}  // namespace
}  // namespace fencetrade::enc
