// MetricsRegistry: exact multi-threaded totals, tear-free mid-run
// snapshots, histogram quantiles, registration/freeze semantics and the
// FENCETRADE_NO_METRICS no-op surface (same API either way).
#include "util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/check.h"

namespace fencetrade::util {
namespace {

#ifndef FENCETRADE_NO_METRICS

TEST(MetricsRegistry, SingleThreadCountersAndGauges) {
  MetricsRegistry reg;
  const MetricId hits = reg.counter("hits");
  const MetricId depth = reg.gauge("depth");
  MetricsShard* shard = reg.attach();
  shard->inc(hits);
  shard->add(hits, 41);
  shard->set(depth, -7);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("hits"), 42u);
  EXPECT_EQ(snap.gauge("depth"), -7);
  EXPECT_EQ(snap.counter("no-such-metric"), 0u);
}

TEST(MetricsRegistry, ReregisteringAnExistingNameReturnsTheSameSlot) {
  MetricsRegistry reg;
  const MetricId a = reg.counter("explore.states");
  const MetricId b = reg.counter("explore.states");
  EXPECT_EQ(a.slot, b.slot);
  // A second "run" can re-register after the freeze, too.
  (void)reg.attach();
  const MetricId c = reg.counter("explore.states");
  EXPECT_EQ(a.slot, c.slot);
}

TEST(MetricsRegistry, NewNameAfterAttachIsACheckedError) {
  MetricsRegistry reg;
  (void)reg.counter("early");
  (void)reg.attach();
  EXPECT_THROW((void)reg.counter("late"), CheckError);
  EXPECT_THROW((void)reg.gauge("also-late"), CheckError);
}

TEST(MetricsRegistry, KindMismatchOnExistingNameIsACheckedError) {
  MetricsRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), CheckError);
}

// The tentpole concurrency claim: 8 threads hammer their own shards,
// totals after the join are exact (every increment is a single-writer
// relaxed store into a cache-line-padded slab).  Run under TSan in the
// sanitizer CI configs.
TEST(MetricsRegistry, EightThreadsMergeToExactTotals) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 200'000;
  MetricsRegistry reg;
  const MetricId ops = reg.counter("ops");
  const MetricId last = reg.gauge("last");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, ops, last, t] {
      MetricsShard* shard = reg.attach();
      for (std::uint64_t i = 0; i < kPerThread; ++i) shard->inc(ops);
      shard->set(last, t);
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("ops"), kThreads * kPerThread);
  // Gauges merge by sum of shards; each shard wrote its index once.
  EXPECT_EQ(snap.gauge("last"), 0 + 1 + 2 + 3 + 4 + 5 + 6 + 7);
}

// Mid-run snapshots race the writers on purpose: every observed value
// must be a plausible prefix (monotonically readable, never torn into
// a garbage 64-bit pattern).  With single-writer 64-bit cells the only
// possible values are 0..kPerThread per shard.
TEST(MetricsRegistry, MidRunSnapshotNeverTears) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 150'000;
  MetricsRegistry reg;
  const MetricId ops = reg.counter("ops");

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, ops] {
      MetricsShard* shard = reg.attach();
      for (std::uint64_t i = 0; i < kPerThread; ++i) shard->inc(ops);
    });
  }
  // Race snapshots against the writers: every merged value must be a
  // plausible partial total (bounded, monotone) — a torn 64-bit read
  // would blow past the bound immediately.
  std::uint64_t prev = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t now = reg.snapshot().counter("ops");
    ASSERT_LE(now, kThreads * kPerThread);
    ASSERT_GE(now, prev);
    prev = now;
    if (now == kThreads * kPerThread) break;
    std::this_thread::yield();
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(reg.snapshot().counter("ops"), kThreads * kPerThread);
}

TEST(MetricsHistogram, BucketsQuantilesAndStreamedStats) {
  MetricsRegistry reg;
  const MetricId lat = reg.histogram("latency", {1.0, 10.0, 100.0});
  MetricsShard* shard = reg.attach();
  // 4 in (-inf,1], 3 in (1,10], 2 in (10,100], 1 overflow.
  for (double v : {0.5, 0.6, 0.7, 1.0}) shard->observe(lat, v);
  for (double v : {2.0, 5.0, 10.0}) shard->observe(lat, v);
  for (double v : {50.0, 99.0}) shard->observe(lat, v);
  shard->observe(lat, 1000.0);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& h = snap.histograms[0].second;
  EXPECT_EQ(snap.histograms[0].first, "latency");
  ASSERT_EQ(h.buckets.size(), 4u);
  EXPECT_EQ(h.buckets[0], 4u);
  EXPECT_EQ(h.buckets[1], 3u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.count, 10u);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_NEAR(h.sum, 0.5 + 0.6 + 0.7 + 1.0 + 2.0 + 5.0 + 10.0 + 50.0 +
                         99.0 + 1000.0,
              1e-9);
  // Rank 5 (p50 of 10) lands in the (1,10] bucket -> its upper bound.
  EXPECT_DOUBLE_EQ(h.p50(), 10.0);
  // Rank 10 (p99) is the overflow bucket, clamped to the observed max.
  EXPECT_DOUBLE_EQ(h.p99(), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);  // clamped to min
}

TEST(MetricsHistogram, MergesAcrossShards) {
  MetricsRegistry reg;
  const MetricId lat = reg.histogram("latency", {10.0});
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&reg, lat, t] {
      MetricsShard* shard = reg.attach();
      shard->observe(lat, static_cast<double>(t + 1));  // 1, 2, 3
      shard->observe(lat, 100.0);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot h = reg.snapshot().histograms[0].second;
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.buckets[0], 3u);
  EXPECT_EQ(h.buckets[1], 3u);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 100.0);
  EXPECT_NEAR(h.sum, 1.0 + 2.0 + 3.0 + 300.0, 1e-9);
}

TEST(MetricsSnapshot, ToStringIsDeterministicallySorted) {
  MetricsRegistry reg;
  const MetricId b = reg.counter("b.metric");
  const MetricId a = reg.counter("a.metric");
  MetricsShard* shard = reg.attach();
  shard->inc(a);
  shard->add(b, 2);
  const std::string s = reg.snapshot().toString();
  const auto posA = s.find("a.metric=1");
  const auto posB = s.find("b.metric=2");
  ASSERT_NE(posA, std::string::npos) << s;
  ASSERT_NE(posB, std::string::npos) << s;
  EXPECT_LT(posA, posB);
}

#else  // FENCETRADE_NO_METRICS

TEST(MetricsRegistry, NoMetricsBuildCompilesToNoops) {
  MetricsRegistry reg;
  const MetricId id = reg.counter("anything");
  MetricsShard* shard = reg.attach();
  shard->inc(id);
  EXPECT_EQ(reg.snapshot().counter("anything"), 0u);
}

#endif  // FENCETRADE_NO_METRICS

// HistogramSnapshot is compiled unconditionally (no-metrics builds
// still link snapshot consumers), so its quantile edge cases are
// testable in both configurations by building snapshots directly.

TEST(MetricsHistogram, QuantileOnEmptyAndSingleSampleSnapshots) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);

  // One sample: every q, including clamped out-of-range q, must map to
  // rank 1 and return the only observation.
  HistogramSnapshot one;
  one.bounds = {10.0};
  one.buckets = {1, 0};
  one.count = 1;
  one.sum = one.min = one.max = 7.0;
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(-2.0), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(3.0), 7.0);
}

TEST(MetricsHistogram, QuantileRankIsNotSkewedByFloatRounding) {
  // 0.7 * 10 == 7.000000000000001 in binary: a bare ceil overshoots to
  // rank 8, which sits in the next bucket.  Rank 7 is correct and lands
  // on the (1,10] bucket's bound.
  HistogramSnapshot h;
  h.bounds = {1.0, 10.0, 100.0};
  h.buckets = {4, 3, 2, 1};
  h.count = 10;
  h.min = 0.5;
  h.max = 1000.0;
  EXPECT_DOUBLE_EQ(h.quantile(0.7), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.3), 1.0);  // rank 3, not 4
}

}  // namespace
}  // namespace fencetrade::util
