#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fencetrade::util {
namespace {

TEST(StatsTest, EmptyAccumulatorThrowsOnQueries) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0);
  EXPECT_THROW(a.mean(), CheckError);
  EXPECT_THROW(a.min(), CheckError);
  EXPECT_THROW(a.max(), CheckError);
  EXPECT_THROW(a.percentile(0.5), CheckError);
  EXPECT_THROW(a.p50(), CheckError);
  EXPECT_THROW(a.p99(), CheckError);
}

TEST(StatsTest, PercentilesNearestRank) {
  Accumulator a;
  // Insert out of order to force the lazy sort path.
  for (double x : {30.0, 10.0, 50.0, 20.0, 40.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.percentile(0.0), 10.0);   // q=0 -> minimum
  EXPECT_DOUBLE_EQ(a.p50(), 30.0);             // ceil(0.5*5) = 3rd
  EXPECT_DOUBLE_EQ(a.percentile(0.8), 40.0);   // ceil(0.8*5) = 4th
  EXPECT_DOUBLE_EQ(a.p99(), 50.0);             // ceil(0.99*5) = 5th
  EXPECT_DOUBLE_EQ(a.percentile(1.0), 50.0);
  EXPECT_THROW(a.percentile(-0.1), CheckError);
  EXPECT_THROW(a.percentile(1.1), CheckError);
}

TEST(StatsTest, PercentileSingleSampleAndInterleavedAdds) {
  Accumulator a;
  a.add(7.0);
  EXPECT_DOUBLE_EQ(a.p50(), 7.0);
  EXPECT_DOUBLE_EQ(a.p99(), 7.0);
  // Adding after a percentile query must re-sort correctly.
  a.add(3.0);
  a.add(11.0);
  EXPECT_DOUBLE_EQ(a.p50(), 7.0);
  EXPECT_DOUBLE_EQ(a.percentile(1.0), 11.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
}

TEST(StatsTest, P99OnHundredSamples) {
  Accumulator a;
  for (int i = 100; i >= 1; --i) a.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(a.p50(), 50.0);
  EXPECT_DOUBLE_EQ(a.p99(), 99.0);
  EXPECT_DOUBLE_EQ(a.percentile(1.0), 100.0);
}

TEST(StatsTest, SingleValue) {
  Accumulator a;
  a.add(42.0);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 42.0);
  EXPECT_DOUBLE_EQ(a.min(), 42.0);
  EXPECT_DOUBLE_EQ(a.max(), 42.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(StatsTest, KnownMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(StatsTest, NegativeValues) {
  Accumulator a;
  a.add(-3.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(StatsTest, PercentileRankIsNotSkewedByFloatRounding) {
  // 0.7 * 10 evaluates to 7.000000000000001 in binary: a bare ceil
  // would overshoot to rank 8.  The nearest rank for q=0.7, n=10 is 7.
  Accumulator a;
  for (int i = 1; i <= 10; ++i) a.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(a.percentile(0.7), 7.0);
  EXPECT_DOUBLE_EQ(a.percentile(0.3), 3.0);  // 0.3*10 = 3.0000000000000004
  // And q=1 on rounding-prone counts must stay clamped to the maximum.
  Accumulator b;
  for (int i = 1; i <= 7; ++i) b.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(b.percentile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(b.percentile(2.0 / 7.0), 2.0);
}

TEST(StatsTest, QuantileClampsAndToleratesEmpty) {
  // quantile() is the non-throwing sibling of percentile(): empty
  // accumulators yield 0.0 and out-of-range q clamps instead of
  // throwing — percentile()'s strict contract is pinned above.
  Accumulator empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  Accumulator one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(-3.0), 42.0);
  EXPECT_DOUBLE_EQ(one.quantile(9.0), 42.0);
  Accumulator a;
  for (double x : {10.0, 20.0, 30.0, 40.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(a.quantile(7.0), 40.0);  // clamped to q=1
}

TEST(StatsTest, SummaryMentionsCount) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  EXPECT_NE(a.summary().find("n=2"), std::string::npos);
  Accumulator empty;
  EXPECT_EQ(empty.summary(), "(empty)");
}

}  // namespace
}  // namespace fencetrade::util
