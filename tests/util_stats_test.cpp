#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fencetrade::util {
namespace {

TEST(StatsTest, EmptyAccumulatorThrowsOnQueries) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0);
  EXPECT_THROW(a.mean(), CheckError);
  EXPECT_THROW(a.min(), CheckError);
  EXPECT_THROW(a.max(), CheckError);
}

TEST(StatsTest, SingleValue) {
  Accumulator a;
  a.add(42.0);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 42.0);
  EXPECT_DOUBLE_EQ(a.min(), 42.0);
  EXPECT_DOUBLE_EQ(a.max(), 42.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(StatsTest, KnownMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(StatsTest, NegativeValues) {
  Accumulator a;
  a.add(-3.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(StatsTest, SummaryMentionsCount) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  EXPECT_NE(a.summary().find("n=2"), std::string::npos);
  Accumulator empty;
  EXPECT_EQ(empty.summary(), "(empty)");
}

}  // namespace
}  // namespace fencetrade::util
