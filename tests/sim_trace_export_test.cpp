// Chrome trace export: deterministic byte-identical output, structural
// JSON validity (checked by a minimal recursive-descent validator — no
// JSON dependency), and faithful event content for a replayed witness.
#include "sim/trace_export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>

#include "core/objects.h"
#include "core/peterson.h"
#include "sim/explore.h"
#include "sim/schedule.h"
#include "util/check.h"

namespace fencetrade::sim {
namespace {

// --- minimal JSON validator -------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && s_[start] != '.';
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

int countOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// The Peterson TSO-fence variant violates mutual exclusion under PSO —
/// the witness schedule the tests export.
core::OrderingSystem makePetersonPsoSystem() {
  return core::buildCountSystem(
      sim::MemoryModel::PSO, 2,
      core::petersonTournamentFactory(core::SegmentPolicy::PerProcess,
                                      core::PetersonVariant::TsoFence));
}

TEST(TraceExport, WitnessExportIsByteIdenticalAcrossCalls) {
  auto os = makePetersonPsoSystem();
  auto res = explore(os.sys);
  ASSERT_TRUE(res.mutexViolation) << "peterson-tso must break under PSO";
  ASSERT_FALSE(res.witness.empty());

  const Execution e1 = replaySchedule(os.sys, res.witness);
  const Execution e2 = replaySchedule(os.sys, res.witness);
  ASSERT_EQ(e1.size(), e2.size());

  const std::string json1 = executionToChromeTrace(os.sys.layout, e1, 2);
  const std::string json2 = executionToChromeTrace(os.sys.layout, e2, 2);
  EXPECT_EQ(json1, json2) << "same witness must export byte-identically";
  EXPECT_TRUE(JsonValidator(json1).valid());
}

TEST(TraceExport, WitnessTraceCarriesTypedEventsAndTracks) {
  auto os = makePetersonPsoSystem();
  auto res = explore(os.sys);
  ASSERT_TRUE(res.mutexViolation);
  const Execution e = replaySchedule(os.sys, res.witness);
  const std::string json = executionToChromeTrace(os.sys.layout, e, 2,
                                                  "peterson-pso-witness");
  ASSERT_TRUE(JsonValidator(json).valid());

  // Metadata: the named process plus one thread_name track per process.
  EXPECT_NE(json.find("\"peterson-pso-witness\""), std::string::npos);
  EXPECT_EQ(countOccurrences(json, "\"thread_name\""), 2);
  EXPECT_NE(json.find("\"P0\""), std::string::npos);
  EXPECT_NE(json.find("\"P1\""), std::string::npos);

  // One complete event per step, each with RMR/β/ρ args.
  EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""),
            static_cast<int>(e.size()));
  EXPECT_EQ(countOccurrences(json, "\"beta\":"), static_cast<int>(e.size()));
  EXPECT_EQ(countOccurrences(json, "\"rho\":"), static_cast<int>(e.size()));
}

TEST(TraceExport, SequentialPassageTotalsMatchStepCounts) {
  auto os = makePetersonPsoSystem();
  Config cfg = initialConfig(os.sys);
  const Execution e = runSequential(os.sys, cfg, {0, 1});
  ASSERT_FALSE(e.empty());
  const std::string json = executionToChromeTrace(os.sys.layout, e, 2);
  ASSERT_TRUE(JsonValidator(json).valid());

  const StepCounts counts = countSteps(e, 2);
  // Every remote step is tagged with the "rmr" category.
  EXPECT_EQ(countOccurrences(json, ",rmr\""),
            static_cast<int>(counts.rmrs));
  EXPECT_EQ(countOccurrences(json, "\"cat\":\"fence\""),
            static_cast<int>(counts.fences));
}

TEST(TraceExport, ReplayScheduleMatchesDirectReplay) {
  auto os = makePetersonPsoSystem();
  auto res = explore(os.sys);
  ASSERT_TRUE(res.mutexViolation);

  Config cfg = initialConfig(os.sys);
  Execution direct;
  for (auto [p, r] : res.witness) {
    auto step = execElem(os.sys, cfg, p, r);
    if (step) direct.push_back(*step);
  }
  const Execution replayed = replaySchedule(os.sys, res.witness);
  ASSERT_EQ(replayed.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(replayed[i].p, direct[i].p) << "step " << i;
    EXPECT_EQ(replayed[i].kind, direct[i].kind) << "step " << i;
    EXPECT_EQ(replayed[i].reg, direct[i].reg) << "step " << i;
    EXPECT_EQ(replayed[i].val, direct[i].val) << "step " << i;
  }
}

TEST(TraceExport, RejectsNonPositiveProcessCount) {
  auto os = makePetersonPsoSystem();
  EXPECT_THROW(
      (void)executionToChromeTrace(os.sys.layout, Execution{}, 0),
      util::CheckError);
}

TEST(TraceExport, EmptyExecutionStillProducesValidJson) {
  auto os = makePetersonPsoSystem();
  const std::string json =
      executionToChromeTrace(os.sys.layout, Execution{}, 2);
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace fencetrade::sim
