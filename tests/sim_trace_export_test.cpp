// Chrome trace export: deterministic byte-identical output, structural
// JSON validity (checked by a minimal recursive-descent validator — no
// JSON dependency), and faithful event content for a replayed witness.
#include "sim/trace_export.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>

#include "check/fuzz.h"
#include "check/inject.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/explore.h"
#include "sim/schedule.h"
#include "util/check.h"

namespace fencetrade::sim {
namespace {

// --- minimal JSON validator -------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && s_[start] != '.';
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

int countOccurrences(const std::string& haystack, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// The Peterson TSO-fence variant violates mutual exclusion under PSO —
/// the witness schedule the tests export.
core::OrderingSystem makePetersonPsoSystem() {
  return core::buildCountSystem(
      sim::MemoryModel::PSO, 2,
      core::petersonTournamentFactory(core::SegmentPolicy::PerProcess,
                                      core::PetersonVariant::TsoFence));
}

TEST(TraceExport, WitnessExportIsByteIdenticalAcrossCalls) {
  auto os = makePetersonPsoSystem();
  auto res = explore(os.sys);
  ASSERT_TRUE(res.mutexViolation) << "peterson-tso must break under PSO";
  ASSERT_FALSE(res.witness.empty());

  const Execution e1 = replaySchedule(os.sys, res.witness);
  const Execution e2 = replaySchedule(os.sys, res.witness);
  ASSERT_EQ(e1.size(), e2.size());

  const std::string json1 = executionToChromeTrace(os.sys.layout, e1, 2);
  const std::string json2 = executionToChromeTrace(os.sys.layout, e2, 2);
  EXPECT_EQ(json1, json2) << "same witness must export byte-identically";
  EXPECT_TRUE(JsonValidator(json1).valid());
}

TEST(TraceExport, WitnessTraceCarriesTypedEventsAndTracks) {
  auto os = makePetersonPsoSystem();
  auto res = explore(os.sys);
  ASSERT_TRUE(res.mutexViolation);
  const Execution e = replaySchedule(os.sys, res.witness);
  const std::string json = executionToChromeTrace(os.sys.layout, e, 2,
                                                  "peterson-pso-witness");
  ASSERT_TRUE(JsonValidator(json).valid());

  // Metadata: the named process plus one thread_name track per process.
  EXPECT_NE(json.find("\"peterson-pso-witness\""), std::string::npos);
  EXPECT_EQ(countOccurrences(json, "\"thread_name\""), 2);
  EXPECT_NE(json.find("\"P0\""), std::string::npos);
  EXPECT_NE(json.find("\"P1\""), std::string::npos);

  // One complete event per step, each with RMR/β/ρ args.
  EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""),
            static_cast<int>(e.size()));
  EXPECT_EQ(countOccurrences(json, "\"beta\":"), static_cast<int>(e.size()));
  EXPECT_EQ(countOccurrences(json, "\"rho\":"), static_cast<int>(e.size()));
}

TEST(TraceExport, SequentialPassageTotalsMatchStepCounts) {
  auto os = makePetersonPsoSystem();
  Config cfg = initialConfig(os.sys);
  const Execution e = runSequential(os.sys, cfg, {0, 1});
  ASSERT_FALSE(e.empty());
  const std::string json = executionToChromeTrace(os.sys.layout, e, 2);
  ASSERT_TRUE(JsonValidator(json).valid());

  const StepCounts counts = countSteps(e, 2);
  // Every remote step is tagged with the "rmr" category.
  EXPECT_EQ(countOccurrences(json, ",rmr\""),
            static_cast<int>(counts.rmrs));
  EXPECT_EQ(countOccurrences(json, "\"cat\":\"fence\""),
            static_cast<int>(counts.fences));
}

TEST(TraceExport, ReplayScheduleMatchesDirectReplay) {
  auto os = makePetersonPsoSystem();
  auto res = explore(os.sys);
  ASSERT_TRUE(res.mutexViolation);

  Config cfg = initialConfig(os.sys);
  Execution direct;
  for (auto [p, r] : res.witness) {
    auto step = execElem(os.sys, cfg, p, r);
    if (step) direct.push_back(*step);
  }
  const Execution replayed = replaySchedule(os.sys, res.witness);
  ASSERT_EQ(replayed.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(replayed[i].p, direct[i].p) << "step " << i;
    EXPECT_EQ(replayed[i].kind, direct[i].kind) << "step " << i;
    EXPECT_EQ(replayed[i].reg, direct[i].reg) << "step " << i;
    EXPECT_EQ(replayed[i].val, direct[i].val) << "step " << i;
  }
}

TEST(TraceExport, DporWitnessExportIsByteIdenticalAcrossRuns) {
  // Source-DPOR prunes the exploration order, but the witness it finds
  // — and therefore the exported trace — must be a pure function of
  // the system: two independent explorations export byte-identically.
  auto os = makePetersonPsoSystem();
  ExploreOptions opts;
  opts.reduction = ReductionMode::sourceDpor;
  auto res1 = explore(os.sys, opts);
  auto res2 = explore(os.sys, opts);
  ASSERT_TRUE(res1.mutexViolation);
  ASSERT_TRUE(res2.mutexViolation);
  ASSERT_EQ(res1.witness, res2.witness);

  const std::string json1 = executionToChromeTrace(
      os.sys.layout, replaySchedule(os.sys, res1.witness), 2);
  const std::string json2 = executionToChromeTrace(
      os.sys.layout, replaySchedule(os.sys, res2.witness), 2);
  EXPECT_EQ(json1, json2);
  EXPECT_TRUE(JsonValidator(json1).valid());
}

TEST(TraceExport, FuzzWitnessExportIsByteIdenticalAcrossWorkerCounts) {
  // The fuzzer's minimized witness is deterministic across worker
  // counts (min-seed reduction + deterministic shrink), so the
  // exported Chrome trace of a 1-worker and a 4-worker scan must be
  // byte-identical.
  sim::System sys1 =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  ASSERT_GT(check::stripFence(sys1, 0), 0);
  sim::System sys4 =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  ASSERT_GT(check::stripFence(sys4, 0), 0);

  check::FuzzOptions opts;
  opts.seeds = 2048;
  opts.workers = 1;
  const check::FuzzReport rep1 = check::fuzzMutualExclusion(sys1, opts);
  opts.workers = 4;
  const check::FuzzReport rep4 = check::fuzzMutualExclusion(sys4, opts);
  ASSERT_TRUE(rep1.witness.has_value());
  ASSERT_TRUE(rep4.witness.has_value());
  EXPECT_EQ(rep1.witness->seed, rep4.witness->seed);

  const std::string json1 = executionToChromeTrace(
      sys1.layout, replaySchedule(sys1, rep1.witness->minimized), 2);
  const std::string json4 = executionToChromeTrace(
      sys4.layout, replaySchedule(sys4, rep4.witness->minimized), 2);
  EXPECT_EQ(json1, json4);
  EXPECT_TRUE(JsonValidator(json1).valid());
}

TEST(TraceExport, ProfileTracksRenderOnPidOneAndStayAdditive) {
  auto os = makePetersonPsoSystem();
  Config cfg = initialConfig(os.sys);
  const Execution e = runSequential(os.sys, cfg, {0, 1});

  util::RunProfileSnapshot profile;
  util::PhaseSpan phase;
  phase.name = "explore.seq[source-dpor]";
  phase.arg0Label = "states";
  phase.arg1Label = "arenaBytes";
  phase.topLevel = true;
  phase.count = 1;
  phase.seconds = 0.25;
  phase.arg0 = 1234;
  phase.arg1 = 4096;
  phase.firstBeginSeconds = 0.5;
  phase.lastEndSeconds = 0.75;
  profile.phases.push_back(phase);

  const std::string withProfile =
      executionToChromeTrace(os.sys.layout, e, 2, "fencetrade", &profile);
  ASSERT_TRUE(JsonValidator(withProfile).valid());
  EXPECT_NE(withProfile.find("\"run profile\""), std::string::npos);
  EXPECT_NE(withProfile.find("\"explore.seq[source-dpor]\""),
            std::string::npos);
  EXPECT_NE(withProfile.find("\"cat\":\"phase\""), std::string::npos);
  EXPECT_NE(withProfile.find("\"states\":1234"), std::string::npos);

  // A null profile must render exactly what the 4-arg overload renders
  // — the profile tracks are strictly additive.
  const std::string noProfile =
      executionToChromeTrace(os.sys.layout, e, 2, "fencetrade", nullptr);
  EXPECT_EQ(noProfile, executionToChromeTrace(os.sys.layout, e, 2));
  // The profile tracks announce themselves with a pid-1 process_name
  // meta event before any phase event.
  const std::size_t metaPos = withProfile.find(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1");
  ASSERT_NE(metaPos, std::string::npos);
  EXPECT_LT(metaPos, withProfile.find("\"cat\":\"phase\""));
}

TEST(TraceExport, RejectsNonPositiveProcessCount) {
  auto os = makePetersonPsoSystem();
  EXPECT_THROW(
      (void)executionToChromeTrace(os.sys.layout, Execution{}, 0),
      util::CheckError);
}

TEST(TraceExport, EmptyExecutionStillProducesValidJson) {
  auto os = makePetersonPsoSystem();
  const std::string json =
      executionToChromeTrace(os.sys.layout, Execution{}, 2);
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace fencetrade::sim
