// First-come-first-served property of the Bakery lock (Lamport 1974):
// if p completes its doorway before q enters its doorway, p enters the
// critical section before q — checked over many random weak-memory
// schedules.
#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/objects.h"
#include "sim/builder.h"
#include "sim/machine.h"
#include "util/check.h"
#include "util/rng.h"

namespace fencetrade::core {
namespace {

using sim::MemoryModel;

/// Count over Bakery with a staggered non-critical prefix: process p
/// performs 30p+1 local reads before entering the doorway, so earlier
/// processes complete their doorway long before later ones arrive and
/// FCFS pairs actually occur under random schedules.
sim::System makeStaggeredBakeryCount(int n, MemoryModel m) {
  sim::System sys;
  sys.model = m;
  sim::Reg c = sys.layout.alloc(sim::kNoOwner, "C");
  std::vector<sim::ProcId> owners;
  for (int p = 0; p < n; ++p) owners.push_back(p);
  sim::Reg pads = sys.layout.allocArray(owners, "pad");
  BakeryLock lock(sys.layout, n);
  for (sim::ProcId p = 0; p < n; ++p) {
    sim::ProgramBuilder b("staggered#" + std::to_string(p));
    sim::LocalId ret = b.local("ret");
    sim::LocalId t = b.local("t");
    for (int i = 0; i <= 30 * p; ++i) b.readReg(t, pads + p);  // NCS delay
    lock.emitAcquire(b, p);
    b.csBegin();
    b.readReg(ret, c);
    b.writeReg(c, b.add(b.L(ret), b.imm(1)));
    b.fence();
    b.csEnd();
    lock.emitRelease(b, p);
    b.ret(b.L(ret));
    sys.programs.push_back(b.build());
  }
  return sys;
}

struct FcfsTrace {
  // Per process, step indices of the interesting transitions (-1 = never).
  std::vector<std::int64_t> doorwayEntered;
  std::vector<std::int64_t> doorwayCompleted;
  std::vector<std::int64_t> csEntered;
};

/// Run one random schedule to completion, recording doorway/CS timing.
FcfsTrace runAndTrace(const sim::System& sys, util::Rng& rng) {
  const int n = sys.n();
  FcfsTrace tr;
  tr.doorwayEntered.assign(n, -1);
  tr.doorwayCompleted.assign(n, -1);
  tr.csEntered.assign(n, -1);

  sim::Config cfg = sim::initialConfig(sys);
  std::int64_t stepIdx = 0;
  for (std::int64_t guard = 0; guard < (1 << 20); ++guard) {
    if (sim::allFinal(cfg)) break;
    // Pick a random non-final process; sometimes commit explicitly.
    std::vector<sim::ProcId> live;
    for (int p = 0; p < n; ++p) {
      if (!cfg.procs[p].final) live.push_back(p);
    }
    sim::ProcId p = live[rng.below(live.size())];
    sim::Reg r = sim::kNoReg;
    const auto& wb = cfg.buffers[p];
    if (!wb.empty() && rng.uniform01() < 0.3) {
      auto regs = wb.distinctRegs();
      sim::Reg cand = regs[rng.below(regs.size())];
      if (wb.canCommitReg(cand)) r = cand;
    }
    auto step = sim::execElem(sys, cfg, p, r);
    FT_CHECK(step.has_value());
    ++stepIdx;

    for (int q = 0; q < n; ++q) {
      const auto& prog = sys.programs[static_cast<std::size_t>(q)];
      const auto& ps = cfg.procs[static_cast<std::size_t>(q)];
      if (ps.final) continue;
      if (tr.doorwayEntered[q] == -1 && ps.pc >= prog.dwBegin &&
          ps.pc < prog.dwEnd) {
        tr.doorwayEntered[q] = stepIdx;
      }
      // Doorway complete only once the buffered doorway writes are also
      // committed (the fence before dwEnd guarantees this when the pc
      // passes it).
      if (tr.doorwayCompleted[q] == -1 && ps.pc >= prog.dwEnd) {
        tr.doorwayCompleted[q] = stepIdx;
      }
      if (tr.csEntered[q] == -1 && sim::inCriticalSection(sys, cfg, q)) {
        tr.csEntered[q] = stepIdx;
      }
    }
  }
  FT_CHECK(sim::allFinal(cfg)) << "random schedule did not finish";
  return tr;
}

TEST(FcfsTest, DoorwayMarkersPresentOnBakeryPrograms) {
  auto os = buildCountSystem(MemoryModel::PSO, 3, bakeryFactory());
  for (const auto& prog : os.sys.programs) {
    EXPECT_GE(prog.dwBegin, 0);
    EXPECT_GT(prog.dwEnd, prog.dwBegin);
    EXPECT_LT(prog.dwEnd, prog.csBegin);
  }
}

TEST(FcfsTest, BakeryIsFirstComeFirstServedUnderPso) {
  const int n = 4;
  std::int64_t orderedPairs = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    auto sys = makeStaggeredBakeryCount(n, MemoryModel::PSO);
    util::Rng rng(seed);
    auto tr = runAndTrace(sys, rng);
    for (int p = 0; p < n; ++p) {
      for (int q = 0; q < n; ++q) {
        if (p == q) continue;
        // p finished its doorway before q entered its doorway?
        if (tr.doorwayCompleted[p] != -1 && tr.doorwayEntered[q] != -1 &&
            tr.doorwayCompleted[p] < tr.doorwayEntered[q]) {
          ++orderedPairs;
          EXPECT_LT(tr.csEntered[p], tr.csEntered[q])
              << "FCFS violated: seed " << seed << " p" << p << " -> p"
              << q;
        }
      }
    }
  }
  // The schedules must actually have produced decided pairs.
  EXPECT_GT(orderedPairs, 50);
}

TEST(FcfsTest, BakeryIsFirstComeFirstServedUnderTso) {
  const int n = 3;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto sys = makeStaggeredBakeryCount(n, MemoryModel::TSO);
    util::Rng rng(seed * 7 + 1);
    auto tr = runAndTrace(sys, rng);
    for (int p = 0; p < n; ++p) {
      for (int q = 0; q < n; ++q) {
        if (p != q && tr.doorwayCompleted[p] != -1 &&
            tr.doorwayEntered[q] != -1 &&
            tr.doorwayCompleted[p] < tr.doorwayEntered[q]) {
          EXPECT_LT(tr.csEntered[p], tr.csEntered[q]) << "seed " << seed;
        }
      }
    }
  }
}

}  // namespace
}  // namespace fencetrade::core
