// Run-control behaviour of the exploration engines: budgets and
// cancellation produce the right StopReason within one poll interval,
// sequential checkpoint/resume is verdict- and witness-identical to an
// uninterrupted run, and the parallel watchdog cancels a stalled run
// instead of hanging it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "check/inject.h"
#include "core/bakery.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/explore.h"
#include "util/check.h"
#include "util/runcontrol.h"

namespace fencetrade::sim {
namespace {

using util::CancelToken;
using util::RunControl;
using util::StopReason;

System bakery2() {
  return core::buildCountSystem(MemoryModel::PSO, 2, core::bakeryFactory())
      .sys;
}

/// ~72k states under PSO: big enough that the 1024-admission budget
/// poll cadence fires many times before completion.
System bakery3() {
  return core::buildCountSystem(MemoryModel::PSO, 3, core::bakeryFactory())
      .sys;
}

System tournament3() {
  return core::buildCountSystem(MemoryModel::PSO, 3,
                                core::tournamentFactory())
      .sys;
}

/// GT_2 with one fence stripped: a genuine PSO mutual-exclusion bug the
/// explorer finds, used to prove witness-identical resume.
System strippedGt2() {
  System sys =
      core::buildCountSystem(MemoryModel::PSO, 2, core::gtFactory(2)).sys;
  EXPECT_GT(check::stripFence(sys, 0), 0);
  return sys;
}

// ---------------------------------------------------------------------------
// Budgets & cancellation → StopReason, sequential and parallel.
// ---------------------------------------------------------------------------

TEST(ExploreControlTest, PreTrippedTokenCancelsSequentialRunImmediately) {
  CancelToken tok;
  tok.cancel();
  ExploreOptions opts;
  opts.control.cancel = &tok;
  const ExploreResult res = explore(bakery2(), opts);
  EXPECT_EQ(res.stopReason, StopReason::Cancelled);
  EXPECT_TRUE(res.capped());
  EXPECT_LE(res.statesVisited, 2u);  // stops at the first admission
}

TEST(ExploreControlTest, PassedDeadlineStopsSequentialWithinOnePoll) {
  ExploreOptions opts;
  opts.control.deadline = RunControl::Clock::now();
  const ExploreResult res = explore(bakery3(), opts);
  EXPECT_EQ(res.stopReason, StopReason::Deadline);
  // Budget polls run every 1024 admissions — far below one progress
  // interval (65536), the acceptance bound.
  EXPECT_LE(res.statesVisited, 2048u);
}

TEST(ExploreControlTest, TinyMemoryBudgetStopsSequentialWithMemoryCap) {
  ExploreOptions opts;
  opts.control.memBudgetBytes = 1;
  const ExploreResult res = explore(bakery3(), opts);
  EXPECT_EQ(res.stopReason, StopReason::MemoryCap);
  EXPECT_LE(res.statesVisited, 2048u);
  EXPECT_GT(res.telemetry.arenaBytes, 1u);
}

TEST(ExploreControlTest, ParallelEngineHonoursAllBudgets) {
  const System sys = tournament3();
  {
    CancelToken tok;
    tok.cancel();
    ExploreOptions opts;
    opts.workers = 4;
    opts.control.cancel = &tok;
    const ExploreResult res = explore(sys, opts);
    EXPECT_EQ(res.stopReason, StopReason::Cancelled);
  }
  {
    ExploreOptions opts;
    opts.workers = 4;
    opts.control.deadline = RunControl::Clock::now();
    const ExploreResult res = explore(sys, opts);
    EXPECT_EQ(res.stopReason, StopReason::Deadline);
    EXPECT_LT(res.statesVisited, 186151u);  // full space never explored
  }
  {
    ExploreOptions opts;
    opts.workers = 4;
    opts.control.memBudgetBytes = 1;
    const ExploreResult res = explore(sys, opts);
    EXPECT_EQ(res.stopReason, StopReason::MemoryCap);
  }
}

TEST(ExploreControlTest, CompleteRunsReportCompleteWithAHarmlessControl) {
  // An active control that never trips must not change the result.
  CancelToken tok;
  ExploreOptions opts;
  opts.control.cancel = &tok;
  opts.control.deadline = RunControl::deadlineIn(3600.0);
  opts.control.memBudgetBytes = ~std::uint64_t{0};
  const ExploreResult res = explore(bakery2(), opts);
  EXPECT_EQ(res.stopReason, StopReason::Complete);
  EXPECT_FALSE(res.capped());
  const ExploreResult plain = explore(bakery2());
  EXPECT_EQ(res.statesVisited, plain.statesVisited);
  EXPECT_EQ(res.outcomes, plain.outcomes);
}

TEST(LivenessControlTest, CancellationAndBudgetsStopGraphConstruction) {
  const System sys = bakery3();
  {
    CancelToken tok;
    tok.cancel();
    LivenessOptions opts;
    opts.control.cancel = &tok;
    const LivenessResult res = checkLiveness(sys, opts);
    EXPECT_EQ(res.stopReason, StopReason::Cancelled);
    EXPECT_FALSE(res.complete());
  }
  {
    LivenessOptions opts;
    opts.control.memBudgetBytes = 1;
    const LivenessResult res = checkLiveness(sys, opts);
    EXPECT_EQ(res.stopReason, StopReason::MemoryCap);
    EXPECT_FALSE(res.complete());
  }
  {
    LivenessOptions opts;  // default control: runs to completion
    const LivenessResult res = checkLiveness(sys, opts);
    EXPECT_EQ(res.stopReason, StopReason::Complete);
    EXPECT_TRUE(res.complete());
    EXPECT_TRUE(res.allCanTerminate);
  }
}

// ---------------------------------------------------------------------------
// Sequential checkpoint/resume.
// ---------------------------------------------------------------------------

/// Runs sys to a StateCap checkpoint at `stopAt` states, resumes, and
/// asserts the resumed result is identical to the uninterrupted run in
/// everything the verdict contract covers.
void roundTrip(const System& sys, std::uint64_t stopAt,
               ReductionMode reduction,
               VisitedTier tier = VisitedTier::exact) {
  ExploreOptions full;
  full.reduction = reduction;
  full.visitedTier = tier;
  const ExploreResult ref = explore(sys, full);

  ExploreOptions first;
  first.reduction = reduction;
  first.visitedTier = tier;
  first.maxStates = stopAt;
  std::string blob;
  first.checkpointOut = &blob;
  const ExploreResult partial = explore(sys, first);
  ASSERT_EQ(partial.stopReason, StopReason::StateCap);
  ASSERT_FALSE(blob.empty());
  ASSERT_EQ(partial.statesVisited, stopAt);

  ExploreOptions second;
  second.reduction = reduction;
  second.visitedTier = tier;
  second.resumeFrom = &blob;
  const ExploreResult resumed = explore(sys, second);

  EXPECT_EQ(resumed.stopReason, ref.stopReason);
  EXPECT_EQ(resumed.statesVisited, ref.statesVisited);
  EXPECT_EQ(resumed.outcomes, ref.outcomes);
  EXPECT_EQ(resumed.mutexViolation, ref.mutexViolation);
  EXPECT_EQ(resumed.maxCsOccupancy, ref.maxCsOccupancy);
  EXPECT_EQ(resumed.witness, ref.witness);  // byte-identical schedule
}

TEST(ExploreCheckpointTest, ResumeMatchesUninterruptedRun) {
  roundTrip(bakery3(), 5'000, ReductionMode::none);
}

TEST(ExploreCheckpointTest, ResumeMatchesUninterruptedRunUnderReduction) {
  roundTrip(bakery3(), 2'000, ReductionMode::persistentSet);
}

TEST(ExploreCheckpointTest, ResumeMatchesUninterruptedRunUnderDpor) {
  roundTrip(bakery3(), 2'000, ReductionMode::sourceDpor);
}

TEST(ExploreCheckpointTest, ResumeMatchesUninterruptedRunDporCompressed) {
  // Compressed visited tier: the resumed store must rebuild its delta
  // chains to the exact ids the interrupted run assigned.
  roundTrip(bakery3(), 2'000, ReductionMode::sourceDpor,
            VisitedTier::compressed);
}

TEST(ExploreCheckpointTest, ResumeReproducesTheExactViolationWitness) {
  // Interrupt before the violation is found; the resumed run must find
  // the same violation with a byte-identical witness schedule.
  roundTrip(strippedGt2(), 50, ReductionMode::none);
}

TEST(ExploreCheckpointTest, ChainedCheckpointsStillConverge) {
  // Checkpoint → resume → checkpoint again → resume: state survives
  // multiple interruption generations.
  const System sys = bakery3();
  const ExploreResult ref = explore(sys);

  ExploreOptions first;
  first.maxStates = 3'000;
  std::string blob1;
  first.checkpointOut = &blob1;
  ASSERT_EQ(explore(sys, first).stopReason, StopReason::StateCap);

  ExploreOptions second;
  second.maxStates = 9'000;
  second.resumeFrom = &blob1;
  std::string blob2;
  second.checkpointOut = &blob2;
  const ExploreResult mid = explore(sys, second);
  ASSERT_EQ(mid.stopReason, StopReason::StateCap);
  ASSERT_EQ(mid.statesVisited, 9'000u);
  ASSERT_FALSE(blob2.empty());

  ExploreOptions third;
  third.resumeFrom = &blob2;
  const ExploreResult done = explore(sys, third);
  EXPECT_EQ(done.stopReason, StopReason::Complete);
  EXPECT_EQ(done.statesVisited, ref.statesVisited);
  EXPECT_EQ(done.outcomes, ref.outcomes);
}

TEST(ExploreCheckpointTest, CompletedRunClearsTheCheckpointSlot) {
  ExploreOptions opts;
  std::string blob = "stale";
  opts.checkpointOut = &blob;
  const ExploreResult res = explore(bakery2(), opts);
  EXPECT_EQ(res.stopReason, StopReason::Complete);
  EXPECT_TRUE(blob.empty());
}

TEST(ExploreCheckpointTest, ResumeOnDifferentSystemIsRejected) {
  ExploreOptions first;
  first.maxStates = 1'000;
  std::string blob;
  first.checkpointOut = &blob;
  ASSERT_EQ(explore(bakery3(), first).stopReason, StopReason::StateCap);

  ExploreOptions second;
  second.resumeFrom = &blob;
  EXPECT_THROW(explore(tournament3(), second), util::CheckError);
}

TEST(ExploreCheckpointTest, ResumeWithDifferentFlagsIsRejected) {
  ExploreOptions first;
  first.maxStates = 1'000;
  std::string blob;
  first.checkpointOut = &blob;
  ASSERT_EQ(explore(bakery3(), first).stopReason, StopReason::StateCap);

  {
    ExploreOptions second;
    second.resumeFrom = &blob;
    // A different search graph: must not resume.
    second.reduction = ReductionMode::persistentSet;
    EXPECT_THROW(explore(bakery3(), second), util::CheckError);
  }
  {
    ExploreOptions second;
    second.resumeFrom = &blob;
    second.reduction = ReductionMode::sourceDpor;
    EXPECT_THROW(explore(bakery3(), second), util::CheckError);
  }
  {
    // Same reduction, different visited tier: also a different search
    // (the compressed store's parent chains shape resume state).
    ExploreOptions second;
    second.resumeFrom = &blob;
    second.visitedTier = VisitedTier::compressed;
    EXPECT_THROW(explore(bakery3(), second), util::CheckError);
  }
}

TEST(ExploreCheckpointTest, ParallelRunsRejectCheckpointAndResume) {
  std::string blob;
  {
    ExploreOptions opts;
    opts.workers = 4;
    opts.checkpointOut = &blob;
    EXPECT_THROW(explore(bakery3(), opts), util::CheckError);
  }
  {
    ExploreOptions first;
    first.maxStates = 1'000;
    first.checkpointOut = &blob;
    ASSERT_EQ(explore(bakery3(), first).stopReason, StopReason::StateCap);
    ExploreOptions second;
    second.workers = 4;
    second.resumeFrom = &blob;
    EXPECT_THROW(explore(bakery3(), second), util::CheckError);
  }
}

// ---------------------------------------------------------------------------
// Parallel heartbeat-staleness watchdog.
// ---------------------------------------------------------------------------

TEST(StallWatchdogTest, StalledWorkerIsMarkedAndRunCancelled) {
  // Wedge the workers deliberately: a progress callback that sleeps far
  // past the stall timeout freezes the calling worker's heartbeat (and
  // the siblings that pile up on the progress mutex).  The watchdog
  // must mark a stalled worker and cancel the run instead of hanging.
  CancelToken tok;
  ExploreOptions opts;
  opts.workers = 4;
  opts.progressInterval = 256;
  opts.control.cancel = &tok;
  opts.control.stallTimeoutSeconds = 0.05;
  std::atomic<bool> slept{false};
  opts.progress = [&](const ProgressUpdate&) {
    if (!slept.exchange(true)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  };
  const ExploreResult res = explore(tournament3(), opts);
  EXPECT_EQ(res.stopReason, StopReason::Cancelled);
  EXPECT_TRUE(tok.cancelled()) << "watchdog must trip the shared token";
  bool anyStalled = false;
  for (const WorkerTelemetry& w : res.telemetry.workers) {
    anyStalled = anyStalled || w.stalled;
  }
  EXPECT_TRUE(anyStalled);
}

TEST(StallWatchdogTest, HealthyRunNeverTripsTheWatchdog) {
  ExploreOptions opts;
  opts.workers = 4;
  opts.control.stallTimeoutSeconds = 5.0;
  const ExploreResult res = explore(bakery2(), opts);
  EXPECT_EQ(res.stopReason, StopReason::Complete);
  for (const WorkerTelemetry& w : res.telemetry.workers) {
    EXPECT_FALSE(w.stalled);
  }
}

}  // namespace
}  // namespace fencetrade::sim
