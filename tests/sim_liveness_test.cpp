// Exhaustive termination reachability (deadlock/livelock freedom) of the
// lock family — the "deadlock freedom" clause of the paper's lock
// definition, checked over the *entire* reachable state graph.
#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/caslocks.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/builder.h"
#include "sim/explore.h"

namespace fencetrade::sim {
namespace {

using core::bakeryFactory;
using core::buildCountSystem;

TEST(LivenessTest, SingleProcessTerminates) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  ProgramBuilder b("w");
  b.writeRegImm(r, 1);
  b.fence();
  b.retImm(0);
  sys.programs.push_back(b.build());

  auto res = checkLiveness(sys);
  ASSERT_TRUE(res.complete());
  EXPECT_TRUE(res.allCanTerminate);
  EXPECT_EQ(res.terminalStates, 1u);
  EXPECT_EQ(res.stuckStates, 0u);
}

TEST(LivenessTest, DetectsGenuineDeadlock) {
  // Two processes, each waiting for the other's flag — a real deadlock:
  // states exist from which no completion is reachable.
  System sys;
  sys.model = MemoryModel::PSO;
  Reg f0 = sys.layout.alloc(kNoOwner, "f0");
  Reg f1 = sys.layout.alloc(kNoOwner, "f1");
  auto prog = [&](const std::string& name, Reg waitOn, Reg setAfter,
                  int retval) {
    // wait until waitOn != 0, THEN announce — circular dependency.
    ProgramBuilder b(name);
    LocalId t = b.local("t");
    b.loop([&] {
      b.readReg(t, waitOn);
      b.exitIf(b.ne(b.L(t), b.imm(0)));
    });
    b.writeRegImm(setAfter, 1);
    b.fence();
    b.retImm(retval);
    return b.build();
  };
  sys.programs.push_back(prog("p0", f1, f0, 0));
  sys.programs.push_back(prog("p1", f0, f1, 1));

  auto res = checkLiveness(sys);
  ASSERT_TRUE(res.complete());
  EXPECT_FALSE(res.allCanTerminate);
  EXPECT_EQ(res.terminalStates, 0u);  // nobody ever finishes
  EXPECT_GT(res.stuckStates, 0u);
}

struct LockCase {
  const char* name;
  core::LockFactory factory;
};

class LockLiveness : public ::testing::TestWithParam<int> {};

std::vector<LockCase> lockCases() {
  std::vector<LockCase> cases;
  cases.push_back({"bakery", bakeryFactory()});
  cases.push_back({"gt2", core::gtFactory(2)});
  cases.push_back({"peterson", core::petersonTournamentFactory()});
  cases.push_back({"ttas", core::ttasFactory()});
  cases.push_back({"tas", core::tasFactory()});
  return cases;
}

TEST(LivenessTest, EveryLockIsDeadlockFreeTwoProcsPso) {
  for (const auto& c : lockCases()) {
    auto os = buildCountSystem(MemoryModel::PSO, 2, c.factory);
    auto res = checkLiveness(os.sys);
    ASSERT_TRUE(res.complete()) << c.name;
    EXPECT_TRUE(res.allCanTerminate)
        << c.name << ": " << res.stuckStates << " stuck states of "
        << res.states;
    EXPECT_GE(res.terminalStates, 2u) << c.name;  // both CS orders
  }
}

TEST(LivenessTest, EveryLockIsDeadlockFreeTwoProcsTsoAndSc) {
  for (const auto& c : lockCases()) {
    for (auto m : {MemoryModel::SC, MemoryModel::TSO}) {
      auto os = buildCountSystem(m, 2, c.factory);
      auto res = checkLiveness(os.sys);
      ASSERT_TRUE(res.complete()) << c.name;
      EXPECT_TRUE(res.allCanTerminate) << c.name << " under "
                                       << memoryModelName(m);
    }
  }
}

TEST(LivenessTest, BrokenPetersonStillTerminates) {
  // The TsoFence Peterson violates mutual exclusion under PSO but stays
  // deadlock-free: safety and liveness are independent properties.
  auto os = buildCountSystem(
      MemoryModel::PSO, 2,
      core::petersonTournamentFactory(core::SegmentPolicy::PerProcess,
                                      core::PetersonVariant::TsoFence));
  auto res = checkLiveness(os.sys);
  ASSERT_TRUE(res.complete());
  EXPECT_TRUE(res.allCanTerminate);
}

TEST(LivenessTest, CapReportsIncomplete) {
  auto os = buildCountSystem(MemoryModel::PSO, 2, bakeryFactory());
  LivenessOptions opts;
  opts.maxStates = 10;
  auto res = checkLiveness(os.sys, opts);
  EXPECT_FALSE(res.complete());
}

}  // namespace
}  // namespace fencetrade::sim
