#include "sim/machine.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "util/check.h"

namespace fencetrade::sim {
namespace {

/// Two-register system with one program: write A=1; write B=2; fence;
/// read x=A; return x.
System writeTwoThenRead(MemoryModel m) {
  System sys;
  sys.model = m;
  Reg a = sys.layout.alloc(kNoOwner, "A");
  Reg b = sys.layout.alloc(kNoOwner, "B");
  ProgramBuilder pb("w2r");
  LocalId x = pb.local("x");
  pb.writeRegImm(a, 1);
  pb.writeRegImm(b, 2);
  pb.fence();
  pb.readReg(x, a);
  pb.fence();
  pb.ret(pb.L(x));
  sys.programs.push_back(pb.build());
  return sys;
}

TEST(MachineTest, WritesAreBufferedUnderPso) {
  System sys = writeTwoThenRead(MemoryModel::PSO);
  Config cfg = initialConfig(sys);

  auto s1 = execElem(sys, cfg, 0, kNoReg);
  ASSERT_TRUE(s1);
  EXPECT_EQ(s1->kind, StepKind::Write);
  EXPECT_EQ(cfg.readMem(0), 0);  // not in shared memory yet
  EXPECT_TRUE(cfg.buffers[0].containsReg(0));

  auto s2 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s2->kind, StepKind::Write);
  EXPECT_EQ(cfg.buffers[0].size(), 2u);
}

TEST(MachineTest, ScWritesCommitImmediately) {
  System sys = writeTwoThenRead(MemoryModel::SC);
  Config cfg = initialConfig(sys);
  auto s1 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s1->kind, StepKind::Write);
  EXPECT_EQ(cfg.readMem(0), 1);  // visible at once
  EXPECT_TRUE(cfg.buffers[0].empty());
}

TEST(MachineTest, FenceForcesCommitOfSmallestRegister) {
  System sys = writeTwoThenRead(MemoryModel::PSO);
  Config cfg = initialConfig(sys);
  execElem(sys, cfg, 0, kNoReg);  // write A
  execElem(sys, cfg, 0, kNoReg);  // write B

  // Poised at fence with two buffered writes: (p, ⊥) commits A first.
  auto s3 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s3->kind, StepKind::Commit);
  EXPECT_EQ(s3->reg, 0);
  EXPECT_EQ(cfg.readMem(0), 1);

  auto s4 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s4->kind, StepKind::Commit);
  EXPECT_EQ(s4->reg, 1);

  // Buffer drained: now the fence step itself executes.
  auto s5 = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s5->kind, StepKind::Fence);
}

TEST(MachineTest, ExplicitCommitElementPicksNamedRegister) {
  System sys = writeTwoThenRead(MemoryModel::PSO);
  Config cfg = initialConfig(sys);
  execElem(sys, cfg, 0, kNoReg);  // write A
  execElem(sys, cfg, 0, kNoReg);  // write B

  // Schedule element (0, B): commit B although A is smaller.
  auto s = execElem(sys, cfg, 0, 1);
  EXPECT_EQ(s->kind, StepKind::Commit);
  EXPECT_EQ(s->reg, 1);
  EXPECT_EQ(cfg.readMem(1), 2);
  EXPECT_EQ(cfg.readMem(0), 0);
}

TEST(MachineTest, ReadForwardsFromOwnBuffer) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg a = sys.layout.alloc(kNoOwner, "A");
  ProgramBuilder pb("fwd");
  LocalId x = pb.local("x");
  pb.writeRegImm(a, 7);
  pb.readReg(x, a);  // no fence: value must come from the buffer
  pb.fence();
  pb.ret(pb.L(x));
  sys.programs.push_back(pb.build());

  Config cfg = initialConfig(sys);
  execElem(sys, cfg, 0, kNoReg);  // write
  auto s = execElem(sys, cfg, 0, kNoReg);
  EXPECT_EQ(s->kind, StepKind::Read);
  EXPECT_TRUE(s->fromBuffer);
  EXPECT_EQ(s->val, 7);
  EXPECT_EQ(cfg.readMem(a), 0);  // still only in the buffer
}

TEST(MachineTest, ReturnMarksFinalAndCountsNbFinal) {
  System sys = writeTwoThenRead(MemoryModel::SC);
  Config cfg = initialConfig(sys);
  EXPECT_EQ(cfg.nbFinal, 0);
  while (!cfg.procs[0].final) {
    ASSERT_TRUE(execElem(sys, cfg, 0, kNoReg).has_value());
  }
  EXPECT_EQ(cfg.nbFinal, 1);
  EXPECT_EQ(cfg.procs[0].retval, 1);
  EXPECT_TRUE(allFinal(cfg));
  // Further elements are no-ops.
  EXPECT_FALSE(execElem(sys, cfg, 0, kNoReg).has_value());
}

TEST(MachineTest, NextOpReflectsPendingOperation) {
  System sys = writeTwoThenRead(MemoryModel::PSO);
  Config cfg = initialConfig(sys);
  const Op* op = nextOp(cfg, 0);
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->kind, InstrKind::Write);
  EXPECT_EQ(op->reg, 0);
  EXPECT_EQ(op->val, 1);
}

TEST(MachineTest, CountStepsTallies) {
  System sys = writeTwoThenRead(MemoryModel::PSO);
  Config cfg = initialConfig(sys);
  Execution exec;
  while (!cfg.procs[0].final) {
    exec.push_back(*execElem(sys, cfg, 0, kNoReg));
  }
  StepCounts c = countSteps(exec, 1);
  EXPECT_EQ(c.writes, 2);
  EXPECT_EQ(c.commits, 2);
  EXPECT_EQ(c.fences, 2);
  EXPECT_EQ(c.reads, 1);
  EXPECT_EQ(c.steps, static_cast<std::int64_t>(exec.size()));
  EXPECT_EQ(c.fencesPerProc[0], 2);
}

TEST(MachineTest, TsoCommitsInProgramOrder) {
  System sys = writeTwoThenRead(MemoryModel::TSO);
  Config cfg = initialConfig(sys);
  execElem(sys, cfg, 0, kNoReg);  // write A
  execElem(sys, cfg, 0, kNoReg);  // write B

  // Explicitly naming B must NOT commit it (not the oldest entry);
  // the element falls through to the forced commit of A.
  auto s = execElem(sys, cfg, 0, 1);
  EXPECT_EQ(s->kind, StepKind::Commit);
  EXPECT_EQ(s->reg, 0);
}

TEST(MachineTest, SystemWithoutProcessesRejected) {
  System sys;
  EXPECT_THROW(initialConfig(sys), util::CheckError);
}

}  // namespace
}  // namespace fencetrade::sim
