#include "core/peterson.h"

#include <gtest/gtest.h>

#include "core/gt.h"
#include "core/objects.h"
#include "sim/explore.h"
#include "util/check.h"
#include "sim/schedule.h"
#include "util/permutation.h"

namespace fencetrade::core {
namespace {

using sim::MemoryModel;

TEST(PetersonTest, HeightAndFenceFormula) {
  sim::MemoryLayout layout;
  PetersonTournamentLock pso(layout, 16);
  EXPECT_EQ(pso.height(), 4);
  EXPECT_EQ(pso.fencesPerPassage(), 12);  // 3 per level

  sim::MemoryLayout layout2;
  PetersonTournamentLock tso(layout2, 16, SegmentPolicy::PerProcess,
                             PetersonVariant::TsoFence);
  EXPECT_EQ(tso.fencesPerPassage(), 8);  // 2 per level
}

TEST(PetersonTest, SoloPassageFenceCountMatchesFormula) {
  for (auto variant :
       {PetersonVariant::PsoSafe, PetersonVariant::TsoFence}) {
    const int n = 8;
    auto os = buildCountSystem(
        MemoryModel::PSO, n,
        petersonTournamentFactory(SegmentPolicy::PerProcess, variant));
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::Execution exec;
    ASSERT_TRUE(sim::runSolo(os.sys, cfg, 0, &exec));
    const auto counts = sim::countSteps(exec, n);
    const std::int64_t perLevel =
        variant == PetersonVariant::PsoSafe ? 3 : 2;
    EXPECT_EQ(counts.fencesPerProc[0], 3 * perLevel + 1);  // + Count CS
  }
}

TEST(PetersonTest, SoloRmrsLogarithmic) {
  std::vector<std::int64_t> rmrs;
  for (int n : {8, 64, 512}) {
    auto os = buildCountSystem(MemoryModel::PSO, n,
                               petersonTournamentFactory());
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::Execution exec;
    ASSERT_TRUE(sim::runSolo(os.sys, cfg, 0, &exec));
    rmrs.push_back(sim::countSteps(exec, n).rmrsPerProc[0]);
  }
  // Each 8x growth in n adds a constant (3 more levels), far from linear.
  EXPECT_LE(rmrs[2], rmrs[0] + 30);
}

TEST(PetersonTest, SequentialOrderingAllSizes) {
  for (int n : {1, 2, 3, 5, 8, 13}) {
    auto os = buildCountSystem(MemoryModel::PSO, n,
                               petersonTournamentFactory());
    sim::Config cfg = sim::initialConfig(os.sys);
    util::Rng rng(static_cast<std::uint64_t>(n));
    auto pi = util::randomPermutation(n, rng);
    sim::runSequential(os.sys, cfg, pi);
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(cfg.procs[pi[k]].retval, k) << "n=" << n;
    }
  }
}

class PetersonMutex : public ::testing::TestWithParam<MemoryModel> {};

INSTANTIATE_TEST_SUITE_P(Models, PetersonMutex,
                         ::testing::Values(MemoryModel::SC, MemoryModel::TSO,
                                           MemoryModel::PSO),
                         [](const auto& paramInfo) {
                           return sim::memoryModelName(paramInfo.param);
                         });

TEST_P(PetersonMutex, PsoSafeVariantCorrectEverywhere) {
  auto os = buildCountSystem(GetParam(), 2, petersonTournamentFactory());
  auto res = sim::explore(os.sys);
  EXPECT_FALSE(res.mutexViolation);
  EXPECT_FALSE(res.capped());
  std::set<std::vector<sim::Value>> expected{{0, 1}, {1, 0}};
  EXPECT_EQ(res.outcomes, expected);
}

TEST_P(PetersonMutex, TsoFenceVariantSeparatesTheModels) {
  // THE separation artifact: the single-fence Peterson entry is sound
  // exactly when the machine keeps stores in order.
  auto os = buildCountSystem(
      GetParam(), 2,
      petersonTournamentFactory(SegmentPolicy::PerProcess,
                                PetersonVariant::TsoFence));
  auto res = sim::explore(os.sys);
  EXPECT_EQ(res.mutexViolation, GetParam() == MemoryModel::PSO)
      << sim::memoryModelName(GetParam());
}

TEST(PetersonTest, TsoFencePsoViolationWitnessReplays) {
  auto os = buildCountSystem(
      MemoryModel::PSO, 2,
      petersonTournamentFactory(SegmentPolicy::PerProcess,
                                PetersonVariant::TsoFence));
  auto res = sim::explore(os.sys);
  ASSERT_TRUE(res.mutexViolation);
  sim::Config cfg = sim::initialConfig(os.sys);
  for (auto [p, r] : res.witness) {
    ASSERT_TRUE(sim::execElem(os.sys, cfg, p, r).has_value());
  }
  int occ = 0;
  for (int p = 0; p < os.sys.n(); ++p) {
    if (sim::inCriticalSection(os.sys, cfg, p)) ++occ;
  }
  EXPECT_GE(occ, 2);
}

TEST(PetersonTest, ThreeProcessesBoundedPso) {
  auto os = buildCountSystem(MemoryModel::PSO, 3,
                             petersonTournamentFactory());
  sim::ExploreOptions opts;
  opts.maxStates = 400'000;
  auto res = sim::explore(os.sys, opts);
  EXPECT_FALSE(res.mutexViolation);
}

TEST(PetersonTest, RandomContentionStress) {
  const int n = 5;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto os = buildCountSystem(MemoryModel::PSO, n,
                               petersonTournamentFactory());
    sim::Config cfg = sim::initialConfig(os.sys);
    util::Rng rng(seed);
    auto run = sim::runRandom(os.sys, cfg, rng, 1 << 20);
    ASSERT_TRUE(run.completed) << "seed " << seed;
    std::set<sim::Value> returns;
    for (const auto& ps : cfg.procs) returns.insert(ps.retval);
    EXPECT_EQ(returns.size(), static_cast<std::size_t>(n))
        << "seed " << seed;
  }
}

TEST(PetersonTest, FewerFencesThanBakeryTournamentSameRmrOrder) {
  const int n = 64;
  auto pet = buildCountSystem(MemoryModel::PSO, n,
                              petersonTournamentFactory());
  auto gt = buildCountSystem(MemoryModel::PSO, n,
                             tournamentFactory());
  auto cost = [&](const sim::System& sys) {
    sim::Config cfg = sim::initialConfig(sys);
    sim::Execution exec;
    FT_CHECK(sim::runSolo(sys, cfg, 0, &exec));
    return sim::countSteps(exec, n);
  };
  const auto cp = cost(pet.sys);
  const auto cg = cost(gt.sys);
  EXPECT_LT(cp.fencesPerProc[0], cg.fencesPerProc[0]);
  EXPECT_LT(cp.rmrsPerProc[0], cg.rmrsPerProc[0] + 8);
}

}  // namespace
}  // namespace fencetrade::core
