// Full correctness matrix: every ordering object × every lock × every
// memory model, exhaustively explored at n = 2.  This is the repo's
// broad safety net — any regression in a lock emitter, an object body,
// the buffer semantics or the explorer shows up here.
#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/caslocks.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/explore.h"
#include "util/check.h"

namespace fencetrade::core {
namespace {

using sim::MemoryModel;

using Builder = OrderingSystem (*)(MemoryModel, int, const LockFactory&);

struct ObjectSpec {
  const char* name;
  Builder build;
};

struct LockSpec {
  const char* name;
  int id;
};

LockFactory factoryById(int id) {
  switch (id) {
    case 0: return bakeryFactory();
    case 1: return gtFactory(2);
    case 2: return tournamentFactory();
    case 3: return petersonTournamentFactory();
    case 4: return tasFactory();
    case 5: return ttasFactory();
    default: FT_CHECK(false); return bakeryFactory();
  }
}

class Matrix : public ::testing::TestWithParam<
                   std::tuple<ObjectSpec, LockSpec, MemoryModel>> {};

INSTANTIATE_TEST_SUITE_P(
    All, Matrix,
    ::testing::Combine(
        ::testing::Values(ObjectSpec{"count", &buildCountSystem},
                          ObjectSpec{"fai", &buildFaiSystem},
                          ObjectSpec{"queue", &buildQueueSystem},
                          ObjectSpec{"scratch", &buildScratchCountSystem}),
        ::testing::Values(LockSpec{"bakery", 0}, LockSpec{"gt2", 1},
                          LockSpec{"tournament", 2},
                          LockSpec{"peterson", 3}, LockSpec{"tas", 4},
                          LockSpec{"ttas", 5}),
        ::testing::Values(MemoryModel::SC, MemoryModel::TSO,
                          MemoryModel::PSO)),
    [](const auto& paramInfo) {
      return std::string(std::get<0>(paramInfo.param).name) + "_" +
             std::get<1>(paramInfo.param).name + "_" +
             sim::memoryModelName(std::get<2>(paramInfo.param));
    });

TEST_P(Matrix, ExhaustiveMutexAndOrderingTwoProcs) {
  const auto& [object, lock, model] = GetParam();
  auto os = object.build(model, 2, factoryById(lock.id));
  sim::ExploreOptions opts;
  opts.maxStates = 3'000'000;
  auto res = sim::explore(os.sys, opts);
  ASSERT_FALSE(res.capped()) << res.statesVisited << " states";
  EXPECT_FALSE(res.mutexViolation);
  // Ordering property: terminal returns are exactly {0,1} in some order.
  std::set<std::vector<sim::Value>> expected{{0, 1}, {1, 0}};
  EXPECT_EQ(res.outcomes, expected);
  EXPECT_LE(res.maxCsOccupancy, 1);
}

}  // namespace
}  // namespace fencetrade::core
