#include "core/bakery.h"

#include <gtest/gtest.h>

#include "core/objects.h"
#include "sim/explore.h"
#include "sim/schedule.h"

namespace fencetrade::core {
namespace {

using sim::MemoryModel;

TEST(BakeryTest, SoloPassageFenceCountMatchesPaper) {
  // Uncontended Acquire = 3 fences, Release = 1 (paper, Section 3).
  auto os = buildCountSystem(MemoryModel::PSO, 4, bakeryFactory());
  sim::Config cfg = sim::initialConfig(os.sys);
  sim::Execution exec;
  ASSERT_TRUE(sim::runSolo(os.sys, cfg, 0, &exec));
  auto counts = sim::countSteps(exec, 4);
  // 3 (acquire) + 1 (CS) + 1 (release) fences for Count over Bakery.
  EXPECT_EQ(counts.fencesPerProc[0], 5);
}

TEST(BakeryTest, SoloPassageRmrsLinearInN) {
  // Running alone, acquiring still reads all other slots: Θ(n) RMRs.
  std::vector<std::int64_t> rmrs;
  for (int n : {4, 8, 16, 32}) {
    auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::Execution exec;
    ASSERT_TRUE(sim::runSolo(os.sys, cfg, 0, &exec));
    rmrs.push_back(sim::countSteps(exec, n).rmrsPerProc[0]);
  }
  // Linear growth: doubling n roughly doubles the RMRs.
  for (std::size_t i = 1; i < rmrs.size(); ++i) {
    EXPECT_GT(rmrs[i], rmrs[i - 1]);
    EXPECT_NEAR(static_cast<double>(rmrs[i]) / rmrs[i - 1], 2.0, 0.7)
        << "step " << i;
  }
}

TEST(BakeryTest, SequentialPassagesReturnOrderedValues) {
  for (int n : {1, 2, 3, 5, 8}) {
    auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
    sim::Config cfg = sim::initialConfig(os.sys);
    std::vector<sim::ProcId> order;
    for (int p = n - 1; p >= 0; --p) order.push_back(p);  // reverse order
    sim::runSequential(os.sys, cfg, order);
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(cfg.procs[order[k]].retval, k) << "n=" << n;
    }
  }
}

TEST(BakeryTest, MutualExclusionExhaustiveTwoProcsPso) {
  auto os = buildCountSystem(MemoryModel::PSO, 2, bakeryFactory());
  auto res = sim::explore(os.sys);
  EXPECT_FALSE(res.mutexViolation) << "witness length "
                                   << res.witness.size();
  EXPECT_FALSE(res.capped());
  // Every terminal outcome is a permutation of {0, 1}.
  std::set<std::vector<sim::Value>> expected{{0, 1}, {1, 0}};
  EXPECT_EQ(res.outcomes, expected);
}

TEST(BakeryTest, MutualExclusionExhaustiveTwoProcsTso) {
  auto os = buildCountSystem(MemoryModel::TSO, 2, bakeryFactory());
  auto res = sim::explore(os.sys);
  EXPECT_FALSE(res.mutexViolation);
  EXPECT_FALSE(res.capped());
}

TEST(BakeryTest, MutualExclusionExhaustiveTwoProcsSc) {
  auto os = buildCountSystem(MemoryModel::SC, 2, bakeryFactory());
  auto res = sim::explore(os.sys);
  EXPECT_FALSE(res.mutexViolation);
  EXPECT_FALSE(res.capped());
}

TEST(BakeryTest, PaperListingDoorwayOrderViolatesMutexEvenUnderSc) {
  // The extended abstract's listing clears C[i] before publishing T[i]
  // (Algorithm 1, lines 6-7); the explorer finds the race already under
  // sequential consistency.  See core/bakery.h.
  auto os = buildCountSystem(MemoryModel::SC, 2,
                             bakeryFactory(BakeryVariant::PaperListing));
  auto res = sim::explore(os.sys);
  EXPECT_TRUE(res.mutexViolation);
  EXPECT_FALSE(res.witness.empty());
}

TEST(BakeryTest, PaperListingViolationWitnessReplays) {
  auto os = buildCountSystem(MemoryModel::PSO, 2,
                             bakeryFactory(BakeryVariant::PaperListing));
  auto res = sim::explore(os.sys);
  ASSERT_TRUE(res.mutexViolation);
  sim::Config cfg = sim::initialConfig(os.sys);
  for (auto [p, r] : res.witness) {
    ASSERT_TRUE(sim::execElem(os.sys, cfg, p, r).has_value());
  }
  int occ = 0;
  for (int p = 0; p < os.sys.n(); ++p) {
    if (sim::inCriticalSection(os.sys, cfg, p)) ++occ;
  }
  EXPECT_GE(occ, 2);
}

TEST(BakeryTest, RandomContentionStressPreservesMutexAndOrdering) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const int n = 4;
    auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
    sim::Config cfg = sim::initialConfig(os.sys);
    util::Rng rng(seed);
    auto run = sim::runRandom(os.sys, cfg, rng, 1 << 20);
    ASSERT_TRUE(run.completed) << "seed " << seed;
    std::set<sim::Value> returns;
    for (const auto& ps : cfg.procs) returns.insert(ps.retval);
    EXPECT_EQ(returns.size(), static_cast<std::size_t>(n))
        << "duplicate Count values => mutual exclusion broken, seed "
        << seed;
    EXPECT_EQ(*returns.begin(), 0);
    EXPECT_EQ(*returns.rbegin(), n - 1);
  }
}

TEST(BakeryTest, RoundRobinContentionCompletes) {
  const int n = 6;
  auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
  sim::Config cfg = sim::initialConfig(os.sys);
  auto run = sim::runRoundRobin(os.sys, cfg, 1 << 20);
  EXPECT_TRUE(run.completed) << "deadlock under round-robin scheduling?";
}

TEST(BakeryTest, InstanceRegistersBelongToSlotOwners) {
  sim::MemoryLayout layout;
  BakeryInstance inst(layout, {3, 1, 4}, "node");
  EXPECT_EQ(inst.slots(), 3);
  EXPECT_EQ(layout.owner(inst.doorwayReg(0)), 3);
  EXPECT_EQ(layout.owner(inst.doorwayReg(1)), 1);
  EXPECT_EQ(layout.owner(inst.ticketReg(2)), 4);
}

}  // namespace
}  // namespace fencetrade::core
