// Edge cases of MemoryLayout and Config (hashing canonicalization,
// memory access helpers).
#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/config.h"
#include "sim/explore.h"
#include "sim/machine.h"
#include "util/check.h"

namespace fencetrade::sim {
namespace {

TEST(LayoutTest, AllocAssignsSequentialIds) {
  MemoryLayout layout;
  Reg a = layout.alloc(0, "a");
  Reg b = layout.alloc(1, "b");
  Reg c = layout.alloc(kNoOwner, "c");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  EXPECT_EQ(layout.count(), 3);
  EXPECT_EQ(layout.owner(a), 0);
  EXPECT_EQ(layout.owner(c), kNoOwner);
  EXPECT_EQ(layout.name(b), "b");
}

TEST(LayoutTest, AllocArrayNamesElements) {
  MemoryLayout layout;
  Reg base = layout.allocArray({5, 6, 7}, "arr");
  EXPECT_EQ(layout.name(base), "arr[0]");
  EXPECT_EQ(layout.name(base + 2), "arr[2]");
  EXPECT_EQ(layout.owner(base + 1), 6);
}

TEST(LayoutTest, OutOfRangeAccessThrows) {
  MemoryLayout layout;
  layout.alloc(0, "a");
  EXPECT_THROW(layout.owner(1), util::CheckError);
  EXPECT_THROW(layout.owner(-1), util::CheckError);
  EXPECT_THROW(layout.name(99), util::CheckError);
  EXPECT_THROW(layout.allocArray({}, "empty"), util::CheckError);
}

TEST(ConfigTest, ReadMemDefaultsToInitValue) {
  Config cfg;
  EXPECT_EQ(cfg.readMem(42), kInitValue);
  cfg.writeMem(42, 7);
  EXPECT_EQ(cfg.readMem(42), 7);
  cfg.writeMem(42, 9);
  EXPECT_EQ(cfg.readMem(42), 9);
}

TEST(ConfigTest, MemHashCanonicalizesInitValue) {
  // A register explicitly reset to the initial value hashes like a
  // never-written register.
  Config a, b;
  a.writeMem(3, 5);
  a.writeMem(3, kInitValue);
  EXPECT_EQ(a.memHash, b.memHash);

  a.writeMem(4, 1);
  b.writeMem(4, 1);
  EXPECT_EQ(a.memHash, b.memHash);
}

TEST(ConfigTest, MemHashOrderInsensitive) {
  Config a, b;
  a.writeMem(1, 10);
  a.writeMem(2, 20);
  b.writeMem(2, 20);
  b.writeMem(1, 10);
  EXPECT_EQ(a.memHash, b.memHash);
}

TEST(ConfigTest, BehavioralHashIgnoresRmrAccounting) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  ProgramBuilder pb("p");
  LocalId x = pb.local("x");
  pb.readReg(x, r);
  pb.fence();
  pb.ret(pb.L(x));
  sys.programs.push_back(pb.build());

  Config a = initialConfig(sys);
  Config b = a;
  // Mutating only the accounting state must not change the behavioral
  // hash (the explorer's state identity).
  b.seen[0].insert({r, 123});
  b.lastCommitter[r] = 0;
  EXPECT_EQ(a.behavioralHash(1), b.behavioralHash(1));

  // Mutating memory must change it.
  b.writeMem(r, 5);
  EXPECT_NE(a.behavioralHash(1), b.behavioralHash(1));
}

TEST(ConfigTest, BehavioralHashSaltMatters) {
  Config cfg;
  EXPECT_NE(cfg.behavioralHash(1), cfg.behavioralHash(2));
}

TEST(ConfigTest, ReturnValuesTracksFinalProcs) {
  System sys;
  sys.model = MemoryModel::PSO;
  sys.layout.alloc(kNoOwner, "r");
  for (int p = 0; p < 2; ++p) {
    ProgramBuilder pb("p" + std::to_string(p));
    pb.fence();
    pb.retImm(p + 10);
    sys.programs.push_back(pb.build());
  }
  Config cfg = initialConfig(sys);
  EXPECT_EQ(cfg.returnValues(), (std::vector<Value>{-1, -1}));
  execElem(sys, cfg, 1, kNoReg);  // fence
  execElem(sys, cfg, 1, kNoReg);  // return
  EXPECT_EQ(cfg.returnValues(), (std::vector<Value>{-1, 11}));
}

TEST(ConfigTest, ValidatePassesOnHealthyConfigs) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  ProgramBuilder pb("p");
  pb.writeRegImm(r, 3);
  pb.fence();
  pb.retImm(0);
  sys.programs.push_back(pb.build());

  Config cfg = initialConfig(sys);
  EXPECT_NO_THROW(cfg.validate());
  // Drive through buffered-write, commit and final states.
  while (!allFinal(cfg)) {
    auto moves = detail::enabledMoves(cfg);
    ASSERT_FALSE(moves.empty());
    execElem(sys, cfg, moves.front().first, moves.front().second);
    EXPECT_NO_THROW(cfg.validate());
  }
}

TEST(ConfigTest, ValidateCatchesCorruption) {
  System sys;
  sys.model = MemoryModel::PSO;
  sys.layout.alloc(kNoOwner, "r");
  ProgramBuilder pb("p");
  pb.fence();
  pb.retImm(0);
  sys.programs.push_back(pb.build());
  const Config healthy = initialConfig(sys);

  {
    Config cfg = healthy;
    cfg.writeMem(0, 7);
    cfg.memHash ^= 0xDEAD;  // desync the incremental hash
    EXPECT_THROW(cfg.validate(), util::CheckError);
  }
  {
    Config cfg = healthy;
    cfg.nbFinal = 1;  // claims a final process that does not exist
    EXPECT_THROW(cfg.validate(), util::CheckError);
  }
  {
    Config cfg = healthy;
    cfg.buffers.pop_back();  // buffer/process shape mismatch
    EXPECT_THROW(cfg.validate(), util::CheckError);
  }
}

TEST(ProcStateTest, HashChangesWithState) {
  ProcState a;
  a.locals = {1, 2};
  ProcState b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.locals[1] = 3;
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.pc = 5;
  EXPECT_NE(a.hash(), b.hash());
  b = a;
  b.final = true;
  EXPECT_NE(a.hash(), b.hash());
}

}  // namespace
}  // namespace fencetrade::sim
