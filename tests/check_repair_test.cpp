// Counterexample-guided fence repair (check/repair.h): insertFence as
// the exact inverse of stripFence, fence-site enumeration and splicing,
// the lattice search itself (minimality, frontier shape, determinism),
// golden-file byte stability of the report JSON, and the checkpointable
// candidate cursor.
#include "check/repair.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "check/inject.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/builder.h"
#include "sim/explore.h"
#include "sim/schedule.h"
#include "util/check.h"
#include "util/runcontrol.h"

namespace fencetrade::check {
namespace {

using sim::MemoryModel;

sim::System gtSystem(int f, MemoryModel m = MemoryModel::PSO) {
  return core::buildCountSystem(m, 2, core::gtFactory(f)).sys;
}

sim::System strippedGt(int f, MemoryModel m = MemoryModel::PSO) {
  sim::System sys = gtSystem(f, m);
  EXPECT_GT(stripFence(sys, 0), 0);
  return sys;
}

sim::System petersonTso(MemoryModel m = MemoryModel::PSO) {
  return core::buildCountSystem(
             m, 2,
             core::petersonTournamentFactory(core::SegmentPolicy::PerProcess,
                                             core::PetersonVariant::TsoFence))
      .sys;
}

/// Two processes that walk straight into the critical section with no
/// protocol at all — read-only, so the fence lattice is empty and the
/// violation is honestly unrepairable.
sim::System lawlessSystem(bool withWrite) {
  sim::System sys;
  sys.model = MemoryModel::PSO;
  const sim::Reg c = sys.layout.alloc(sim::kNoOwner, "C");
  for (int p = 0; p < 2; ++p) {
    sim::ProgramBuilder b("lawless#" + std::to_string(p));
    const sim::LocalId ret = b.local("ret");
    b.csBegin();
    b.readReg(ret, c);
    if (withWrite) b.writeReg(c, b.imm(p + 1));
    b.csEnd();
    b.ret(b.L(ret));
    sys.programs.push_back(b.build());
  }
  return sys;
}

struct Passage {
  std::int64_t beta = 0;
  std::int64_t rho = 0;
};

Passage passage(const sim::System& sys) {
  sim::Config cfg = sim::initialConfig(sys);
  std::vector<sim::ProcId> order;
  for (int p = 0; p < sys.n(); ++p) order.push_back(p);
  const sim::StepCounts counts =
      sim::countSteps(sim::runSequential(sys, cfg, order), sys.n());
  return {counts.fences, counts.rmrs};
}

// ---------------------------------------------------------------------------
// insertFence: the exact inverse of stripFence.
// ---------------------------------------------------------------------------

TEST(InsertFenceTest, StripInsertRoundTripIsByteIdentical) {
  const sim::System orig = gtSystem(2);
  sim::System sys = orig;
  ASSERT_EQ(stripFence(sys, 0), sys.n());

  // Re-fence every no-op slot the strip left behind.
  int restored = 0;
  for (int p = 0; p < sys.n(); ++p) {
    const sim::Program& prog = sys.programs[static_cast<std::size_t>(p)];
    for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
      sim::System probe = sys;
      if (insertFence(probe, p, static_cast<std::int32_t>(pc))) {
        ASSERT_TRUE(insertFence(sys, p, static_cast<std::int32_t>(pc)));
        ++restored;
      }
    }
  }
  ASSERT_EQ(restored, orig.n());

  // Instruction-exact: every field of every instruction matches.
  for (int p = 0; p < sys.n(); ++p) {
    const sim::Program& a = sys.programs[static_cast<std::size_t>(p)];
    const sim::Program& b = orig.programs[static_cast<std::size_t>(p)];
    ASSERT_EQ(a.code.size(), b.code.size());
    for (std::size_t pc = 0; pc < a.code.size(); ++pc) {
      EXPECT_EQ(static_cast<int>(a.code[pc].kind),
                static_cast<int>(b.code[pc].kind))
          << "p" << p << " pc " << pc;
      EXPECT_EQ(a.code[pc].a, b.code[pc].a) << "p" << p << " pc " << pc;
      EXPECT_EQ(a.code[pc].expr0, b.code[pc].expr0);
      EXPECT_EQ(a.code[pc].expr1, b.code[pc].expr1);
      EXPECT_EQ(a.code[pc].expr2, b.code[pc].expr2);
    }
    EXPECT_EQ(a.disassemble(), b.disassemble());
  }

  // And behaviourally identical: same exploration verdict, same
  // outcome set, same state count, same β/ρ per sequential passage.
  const sim::ExploreResult ra = sim::explore(sys, {});
  const sim::ExploreResult rb = sim::explore(orig, {});
  EXPECT_EQ(ra.mutexViolation, rb.mutexViolation);
  EXPECT_EQ(ra.outcomes, rb.outcomes);
  EXPECT_EQ(ra.statesVisited, rb.statesVisited);
  const Passage pa = passage(sys), pb = passage(orig);
  EXPECT_EQ(pa.beta, pb.beta);
  EXPECT_EQ(pa.rho, pb.rho);
  EXPECT_EQ(countFences(sys), countFences(orig));
}

TEST(InsertFenceTest, RejectsOutOfRangeUntouched) {
  sim::System sys = strippedGt(2);
  const std::string before = sys.programs[0].disassemble();
  EXPECT_FALSE(insertFence(sys, -1, 0));
  EXPECT_FALSE(insertFence(sys, 99, 0));
  EXPECT_FALSE(insertFence(sys, 0, -1));
  EXPECT_FALSE(insertFence(sys, 0, 9999));
  EXPECT_EQ(sys.programs[0].disassemble(), before);
}

TEST(InsertFenceTest, RejectsEveryNonSlotInstruction) {
  // An unstripped system has no free slots, so insertFence must refuse
  // every single pc and leave the fence count unchanged.
  sim::System sys = gtSystem(2);
  const int fences = countFences(sys);
  for (int p = 0; p < sys.n(); ++p) {
    const std::size_t len = sys.programs[static_cast<std::size_t>(p)].code.size();
    for (std::size_t pc = 0; pc < len; ++pc) {
      EXPECT_FALSE(insertFence(sys, p, static_cast<std::int32_t>(pc)))
          << "p" << p << " pc " << pc;
    }
  }
  EXPECT_EQ(countFences(sys), fences);
}

TEST(InsertFenceTest, RestoresBuilderFenceShape) {
  sim::System sys = strippedGt(2);
  // Find one slot, refence it, and check the exact instruction bytes.
  bool found = false;
  const sim::Program& prog = sys.programs[0];
  for (std::size_t pc = 0; pc < prog.code.size() && !found; ++pc) {
    if (prog.code[pc].kind == sim::InstrKind::Jmp &&
        prog.code[pc].a == static_cast<std::int32_t>(pc + 1)) {
      ASSERT_TRUE(insertFence(sys, 0, static_cast<std::int32_t>(pc)));
      const sim::Instr& ins = sys.programs[0].code[pc];
      EXPECT_EQ(ins.kind, sim::InstrKind::Fence);
      EXPECT_EQ(ins.a, 0);
      EXPECT_EQ(ins.expr0, -1);
      EXPECT_EQ(ins.expr1, -1);
      EXPECT_EQ(ins.expr2, -1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Fence-site enumeration and splicing (sim/program.h).
// ---------------------------------------------------------------------------

TEST(FenceSiteTest, StrippedSlotsBecomeReplaceSites) {
  const sim::System sys = strippedGt(2);
  for (int p = 0; p < sys.n(); ++p) {
    const sim::Program& prog = sys.programs[static_cast<std::size_t>(p)];
    const std::vector<sim::FenceSite> sites = sim::fenceInsertionSites(prog);
    ASSERT_FALSE(sites.empty());
    // Replace sites first (ascending pc), then shift sites (ascending).
    bool seenShift = false;
    std::int32_t lastReplace = -1, lastShift = -1;
    int replaceCount = 0;
    for (const sim::FenceSite& s : sites) {
      if (s.shift) {
        seenShift = true;
        EXPECT_GT(s.pc, lastShift);
        lastShift = s.pc;
      } else {
        EXPECT_FALSE(seenShift) << "replace site after a shift site";
        EXPECT_GT(s.pc, lastReplace);
        lastReplace = s.pc;
        ++replaceCount;
        // A replace site is exactly a stripped slot.
        EXPECT_EQ(prog.code[static_cast<std::size_t>(s.pc)].kind,
                  sim::InstrKind::Jmp);
        EXPECT_EQ(prog.code[static_cast<std::size_t>(s.pc)].a, s.pc + 1);
      }
    }
    EXPECT_EQ(replaceCount, 1) << "stripFence(.,0) leaves one slot";
  }
}

TEST(FenceSiteTest, WriteFreeProgramHasNoSites) {
  const sim::System sys = lawlessSystem(/*withWrite=*/false);
  for (const sim::Program& prog : sys.programs) {
    EXPECT_TRUE(sim::fenceInsertionSites(prog).empty());
  }
  // With a write the shift sites appear.
  const sim::System wsys = lawlessSystem(/*withWrite=*/true);
  for (const sim::Program& prog : wsys.programs) {
    const std::vector<sim::FenceSite> sites = sim::fenceInsertionSites(prog);
    EXPECT_FALSE(sites.empty());
    for (const sim::FenceSite& s : sites) EXPECT_TRUE(s.shift);
  }
}

TEST(FenceSiteTest, SpliceShiftsJumpTargetsAndMarkers) {
  const sim::System sys = petersonTso();
  for (const sim::Program& orig : sys.programs) {
    for (const sim::FenceSite& s : sim::fenceInsertionSites(orig)) {
      if (!s.shift) continue;
      sim::Program prog = orig;
      sim::spliceFenceBefore(prog, s.pc);  // validates internally
      ASSERT_EQ(prog.code.size(), orig.code.size() + 1);
      EXPECT_EQ(prog.code[static_cast<std::size_t>(s.pc)].kind,
                sim::InstrKind::Fence);
      // Markers that sat at/above the splice moved by exactly one.
      if (orig.csBegin >= s.pc) {
        EXPECT_EQ(prog.csBegin, orig.csBegin + 1);
      } else if (orig.csBegin >= 0) {
        EXPECT_EQ(prog.csBegin, orig.csBegin);
      }
    }
  }
}

TEST(FenceSiteTest, SpliceIntoSafeLockPreservesBehaviour) {
  // Fences only restrict behaviours: splicing one anywhere into a
  // correct lock must keep mutual exclusion and the outcome set.
  const sim::System sys = gtSystem(2);
  const sim::ExploreResult base = sim::explore(sys, {});
  ASSERT_FALSE(base.mutexViolation);
  const std::vector<sim::FenceSite> sites =
      sim::fenceInsertionSites(sys.programs[0]);
  ASSERT_FALSE(sites.empty());
  sim::System spliced = sys;
  sim::spliceFenceBefore(spliced.programs[0], sites.front().pc);
  const sim::ExploreResult res = sim::explore(spliced, {});
  EXPECT_FALSE(res.mutexViolation);
  EXPECT_EQ(res.outcomes, base.outcomes);
  EXPECT_EQ(countFences(spliced), countFences(sys) + 1);
}

TEST(FenceSiteTest, ApplyMultipleSitesInOneProgram) {
  // Applying two shift sites of the same program must land both fences
  // even though the second splice renumbers everything above it.
  const sim::System sys = petersonTso();
  std::vector<RepairSite> all;
  for (const sim::FenceSite& s : sim::fenceInsertionSites(sys.programs[0])) {
    if (s.shift) all.push_back({0, s});
  }
  ASSERT_GE(all.size(), 2u);
  const sim::System out =
      applyFenceSites(sys, all, {0, static_cast<int>(all.size()) - 1});
  EXPECT_EQ(countFences(out), countFences(sys) + 2);
  out.programs[0].validate();
  // Untouched program is untouched.
  EXPECT_EQ(out.programs[1].disassemble(), sys.programs[1].disassemble());
}

// ---------------------------------------------------------------------------
// The repair search.
// ---------------------------------------------------------------------------

TEST(RepairTest, RepairsStrippedGt2UnderPso) {
  const sim::System broken = strippedGt(2);
  const sim::System orig = gtSystem(2);
  const RepairReport rep = repairMutualExclusion(broken);
  EXPECT_EQ(rep.verdict, Verdict::Repaired);
  EXPECT_EQ(rep.stopReason, util::StopReason::Complete);
  EXPECT_TRUE(rep.inputViolates);
  EXPECT_FALSE(rep.unrepairable);
  ASSERT_FALSE(rep.frontier.empty());
  // Acceptance criterion: the synthesized repair spends no more β than
  // the hand-placed original.
  EXPECT_LE(rep.frontier.front().beta, passage(orig).beta);
  for (const RepairPoint& pt : rep.frontier) {
    EXPECT_TRUE(pt.verified);
    EXPECT_TRUE(pt.onFrontier);
    EXPECT_FALSE(pt.sites.empty());
  }
  EXPECT_EQ(verdictExitCode(rep.verdict), 5);
}

TEST(RepairTest, RepairsStrippedGt1AndGt3UnderPso) {
  for (int f : {1, 3}) {
    const sim::System broken = strippedGt(f);
    const RepairReport rep = repairMutualExclusion(broken);
    EXPECT_EQ(rep.verdict, Verdict::Repaired) << "GT_" << f;
    ASSERT_FALSE(rep.frontier.empty()) << "GT_" << f;
    EXPECT_LE(rep.frontier.front().beta, passage(gtSystem(f)).beta)
        << "GT_" << f;
  }
}

TEST(RepairTest, SafeInputYieldsPassWithZeroInsertionPoint) {
  const RepairReport rep = repairMutualExclusion(gtSystem(2));
  EXPECT_EQ(rep.verdict, Verdict::Pass);
  EXPECT_FALSE(rep.inputViolates);
  ASSERT_EQ(rep.repairs.size(), 1u);
  ASSERT_EQ(rep.frontier.size(), 1u);
  EXPECT_TRUE(rep.frontier.front().sites.empty());
  EXPECT_EQ(rep.frontier.front().beta, rep.inputBeta);
  EXPECT_EQ(rep.frontier.front().rho, rep.inputRho);
  EXPECT_TRUE(rep.frontier.front().verified);
  EXPECT_EQ(rep.candidatesEvaluated, 0u);
  EXPECT_EQ(verdictExitCode(rep.verdict), 0);
}

TEST(RepairTest, PetersonTsoUnderPsoRecoversStoreStoreFence) {
  // The TsoFence Peterson writes flag then turn with no intervening
  // fence — safe under TSO, broken under PSO.  The repair must find the
  // canonical fix: a store-store fence between the two writes (a splice
  // before pc 1) in *each* program.
  const RepairReport rep = repairMutualExclusion(petersonTso());
  ASSERT_EQ(rep.verdict, Verdict::Repaired);
  ASSERT_FALSE(rep.frontier.empty());
  const RepairPoint& best = rep.frontier.front();
  ASSERT_EQ(best.sites.size(), 2u);
  bool sawP0 = false, sawP1 = false;
  for (int idx : best.sites) {
    const RepairSite& s = rep.sites[static_cast<std::size_t>(idx)];
    EXPECT_TRUE(s.site.shift);
    EXPECT_EQ(s.site.pc, 1);
    if (s.program == 0) sawP0 = true;
    if (s.program == 1) sawP1 = true;
  }
  EXPECT_TRUE(sawP0 && sawP1)
      << "the fix must fence both programs' write pairs";
}

TEST(RepairTest, EmptyLatticeIsHonestlyUnrepairable) {
  const RepairReport rep =
      repairMutualExclusion(lawlessSystem(/*withWrite=*/false));
  EXPECT_EQ(rep.verdict, Verdict::Violation);
  EXPECT_TRUE(rep.inputViolates);
  EXPECT_TRUE(rep.unrepairable);
  EXPECT_TRUE(rep.sites.empty());
  EXPECT_TRUE(rep.frontier.empty());
  EXPECT_EQ(rep.candidatesEvaluated, 0u);
  EXPECT_EQ(verdictExitCode(rep.verdict), 1);
}

TEST(RepairTest, ExhaustedLatticeIsHonestlyUnrepairable) {
  // With writes the lattice is non-empty, but no fence placement can
  // conjure mutual exclusion out of a protocol-free program — the
  // search must exhaust every subset and say so.
  const RepairReport rep =
      repairMutualExclusion(lawlessSystem(/*withWrite=*/true));
  EXPECT_EQ(rep.verdict, Verdict::Violation);
  EXPECT_TRUE(rep.unrepairable);
  EXPECT_FALSE(rep.sites.empty());
  EXPECT_GT(rep.candidatesEvaluated, 0u);
  EXPECT_TRUE(rep.frontier.empty());
}

TEST(RepairTest, WitnessScreeningPrunesCandidates) {
  // The counterexample-guided part must actually fire: most candidates
  // should die on a witness replay, not on a fresh fuzz campaign.
  const RepairReport rep = repairMutualExclusion(strippedGt(2));
  EXPECT_GT(rep.witnessesCollected, 0u);
  EXPECT_GT(rep.candidatesScreenedByWitness, 0u);
  EXPECT_LT(rep.candidatesScreenedByWitness, rep.candidatesEvaluated);
}

TEST(RepairTest, FrontierIsSortedAndPareto) {
  for (const sim::System& broken : {strippedGt(2), petersonTso()}) {
    const RepairReport rep = repairMutualExclusion(broken);
    ASSERT_FALSE(rep.frontier.empty());
    for (std::size_t i = 1; i < rep.frontier.size(); ++i) {
      EXPECT_GT(rep.frontier[i].beta, rep.frontier[i - 1].beta);
      EXPECT_LT(rep.frontier[i].rho, rep.frontier[i - 1].rho);
    }
    // Every repair is dominated by (or is) a frontier point, and the
    // onFrontier flags agree between the two lists.
    for (const RepairPoint& pt : rep.repairs) {
      bool dominated = false;
      for (const RepairPoint& f : rep.frontier) {
        if (f.beta <= pt.beta && f.rho <= pt.rho) dominated = true;
      }
      EXPECT_TRUE(dominated);
    }
    std::size_t flagged = 0;
    for (const RepairPoint& pt : rep.repairs) flagged += pt.onFrontier;
    EXPECT_EQ(flagged, rep.frontier.size());
  }
}

/// Satellite acceptance: every frontier point must be exhaustively
/// mutex-safe on all four engine configurations, and 1-minimal — taking
/// away any single fence re-opens a fuzzer-findable violation.
void checkFrontierSafeAndMinimal(const sim::System& broken) {
  const RepairReport rep = repairMutualExclusion(broken);
  ASSERT_EQ(rep.verdict, Verdict::Repaired);
  ASSERT_FALSE(rep.frontier.empty());
  for (const RepairPoint& pt : rep.frontier) {
    const sim::System fixed = applyFenceSites(broken, rep.sites, pt.sites);
    for (int workers : {1, 4}) {
      for (sim::ReductionMode mode :
           {sim::ReductionMode::none, sim::ReductionMode::persistentSet,
            sim::ReductionMode::sourceDpor}) {
        sim::ExploreOptions eo;
        eo.workers = workers;
        eo.reduction = mode;
        const sim::ExploreResult res = sim::explore(fixed, eo);
        EXPECT_FALSE(res.mutexViolation)
            << "workers=" << workers
            << " mode=" << sim::reductionModeName(mode);
        EXPECT_FALSE(res.capped());
        EXPECT_LE(res.maxCsOccupancy, 1);
      }
    }
    for (std::size_t drop = 0; drop < pt.sites.size(); ++drop) {
      std::vector<int> sub = pt.sites;
      sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(drop));
      const sim::System weakened = applyFenceSites(broken, rep.sites, sub);
      FuzzOptions fo;
      fo.seeds = 8192;
      const FuzzReport fr = fuzzMutualExclusion(weakened, fo);
      EXPECT_TRUE(fr.witness.has_value())
          << "dropping site " << pt.sites[drop]
          << " should re-open a fuzzer-findable violation";
    }
  }
}

TEST(RepairTest, FrontierPointsSafeOnAllEnginesAndOneMinimalGt2) {
  checkFrontierSafeAndMinimal(strippedGt(2));
}

TEST(RepairTest, FrontierPointsSafeOnAllEnginesAndOneMinimalPeterson) {
  checkFrontierSafeAndMinimal(petersonTso());
}

TEST(RepairTest, ReportIsFuzzWorkerCountInvariant) {
  const sim::System broken = strippedGt(2);
  RepairOptions one;
  one.fuzzWorkers = 1;
  RepairOptions four;
  four.fuzzWorkers = 4;
  const std::string a = repairReportToJson(repairMutualExclusion(broken, one));
  const std::string b =
      repairReportToJson(repairMutualExclusion(broken, four));
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Run control: candidate budget, cancellation, checkpoint/resume.
// ---------------------------------------------------------------------------

TEST(RepairControlTest, MaxCandidatesCapsTheSearch) {
  RepairOptions opts;
  opts.maxCandidates = 2;
  std::string blob;
  opts.checkpointOut = &blob;
  const RepairReport rep = repairMutualExclusion(petersonTso(), opts);
  EXPECT_EQ(rep.stopReason, util::StopReason::StateCap);
  EXPECT_EQ(rep.verdict, Verdict::Inconclusive);
  EXPECT_EQ(rep.candidatesEvaluated, 2u);
  EXPECT_TRUE(rep.frontier.empty());
  EXPECT_FALSE(blob.empty()) << "capped searches must leave a checkpoint";
}

TEST(RepairControlTest, PreCancelledTokenYieldsInterrupted) {
  util::CancelToken tok;
  tok.cancel();
  RepairOptions opts;
  opts.control.cancel = &tok;
  std::string blob;
  opts.checkpointOut = &blob;
  const RepairReport rep = repairMutualExclusion(strippedGt(2), opts);
  EXPECT_EQ(rep.stopReason, util::StopReason::Cancelled);
  EXPECT_EQ(rep.verdict, Verdict::Interrupted);
  EXPECT_EQ(verdictExitCode(rep.verdict), 4);
}

TEST(RepairControlTest, CheckpointResumeMatchesUninterruptedRun) {
  const sim::System broken = petersonTso();

  RepairOptions capped;
  capped.maxCandidates = 5;
  std::string blob;
  capped.checkpointOut = &blob;
  const RepairReport partial = repairMutualExclusion(broken, capped);
  ASSERT_EQ(partial.stopReason, util::StopReason::StateCap);
  ASSERT_TRUE(partial.frontier.empty());
  ASSERT_FALSE(blob.empty());

  RepairOptions resume;
  resume.resumeFrom = &blob;
  const RepairReport resumed = repairMutualExclusion(broken, resume);
  const RepairReport clean = repairMutualExclusion(broken);
  EXPECT_EQ(resumed.verdict, Verdict::Repaired);
  // Indistinguishable from a run that was never interrupted — down to
  // the serialized bytes (counters, witnesses, frontier, everything).
  EXPECT_EQ(repairReportToJson(resumed), repairReportToJson(clean));
}

TEST(RepairControlTest, ResumeRejectsDifferentSystemOrOptions) {
  RepairOptions capped;
  capped.maxCandidates = 1;
  std::string blob;
  capped.checkpointOut = &blob;
  ASSERT_EQ(repairMutualExclusion(strippedGt(2), capped).stopReason,
            util::StopReason::StateCap);
  ASSERT_FALSE(blob.empty());

  // Same options, different system.  (Note gtFactory clamps f to
  // ceil(log2 n), so at n=2 GT_1 and GT_2 are the *same* system — a
  // genuinely different one is needed here.)
  RepairOptions resume;
  resume.resumeFrom = &blob;
  EXPECT_THROW(repairMutualExclusion(petersonTso(), resume),
               util::CheckError);

  // Same system, different witness-shaping options.
  RepairOptions changed;
  changed.fuzzSeeds = 77;
  changed.resumeFrom = &blob;
  EXPECT_THROW(repairMutualExclusion(strippedGt(2), changed),
               util::CheckError);

  // Corrupt container.
  std::string mangled = blob;
  mangled[mangled.size() / 2] ^= 0x5a;
  RepairOptions broken2;
  broken2.resumeFrom = &mangled;
  EXPECT_THROW(repairMutualExclusion(strippedGt(2), broken2),
               util::CheckError);
}

// ---------------------------------------------------------------------------
// Golden files: the report JSON is a pure function of (system, options)
// and must stay byte-stable across refactors and worker counts.
// Regenerate deliberately with FENCETRADE_REGEN_GOLDEN=1.
// ---------------------------------------------------------------------------

void checkGolden(const sim::System& broken, const std::string& name) {
  const std::string path = std::string(FENCETRADE_GOLDEN_DIR) + "/" + name;
  const std::string actual = repairReportToJson(repairMutualExclusion(broken));
  if (std::getenv("FENCETRADE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual << "\n";
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (regenerate with FENCETRADE_REGEN_GOLDEN=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual + "\n") << "golden drift in " << name;
}

TEST(RepairGoldenTest, Gt1Pso) { checkGolden(strippedGt(1), "repair_gt1_pso.json"); }
TEST(RepairGoldenTest, Gt1Tso) {
  checkGolden(strippedGt(1, MemoryModel::TSO), "repair_gt1_tso.json");
}
TEST(RepairGoldenTest, Gt2Pso) { checkGolden(strippedGt(2), "repair_gt2_pso.json"); }
TEST(RepairGoldenTest, Gt2Tso) {
  checkGolden(strippedGt(2, MemoryModel::TSO), "repair_gt2_tso.json");
}
TEST(RepairGoldenTest, PetersonTsoPso) {
  checkGolden(petersonTso(), "repair_peterson_tso_pso.json");
}

// ---------------------------------------------------------------------------
// Verdict plumbing for the new REPAIRED outcome.
// ---------------------------------------------------------------------------

TEST(RepairVerdictTest, RepairedMapsToExitFiveAndStableName) {
  EXPECT_EQ(verdictExitCode(Verdict::Repaired), 5);
  EXPECT_STREQ(verdictName(Verdict::Repaired), "repaired");
}

TEST(RepairVerdictTest, CombineRanksRepairedBetweenPassAndInconclusive) {
  EXPECT_EQ(combineVerdicts(Verdict::Pass, Verdict::Repaired),
            Verdict::Repaired);
  EXPECT_EQ(combineVerdicts(Verdict::Repaired, Verdict::Pass),
            Verdict::Repaired);
  EXPECT_EQ(combineVerdicts(Verdict::Repaired, Verdict::Inconclusive),
            Verdict::Inconclusive);
  EXPECT_EQ(combineVerdicts(Verdict::Repaired, Verdict::Violation),
            Verdict::Violation);
  EXPECT_EQ(combineVerdicts(Verdict::Repaired, Verdict::Interrupted),
            Verdict::Interrupted);
}

}  // namespace
}  // namespace fencetrade::check
