// util::Backoff: capped exponential growth, deterministic seeded
// jitter, retry budgets, and the injectable sleeper (the fake clock
// that keeps these tests instant).
#include "util/backoff.h"

#include <gtest/gtest.h>

#include <vector>

namespace fencetrade {
namespace {

std::vector<double> drain(util::Backoff& b) {
  std::vector<double> delays;
  while (b.retry([&](double s) { delays.push_back(s); })) {
  }
  return delays;
}

TEST(BackoffTest, CappedExponentialWithoutJitter) {
  util::BackoffPolicy p;
  p.initialSeconds = 0.1;
  p.multiplier = 2.0;
  p.maxSeconds = 0.5;
  p.jitterFraction = 0.0;
  p.maxAttempts = 6;
  util::Backoff b(p);
  const std::vector<double> delays = drain(b);
  ASSERT_EQ(delays.size(), 6u);
  EXPECT_DOUBLE_EQ(delays[0], 0.1);
  EXPECT_DOUBLE_EQ(delays[1], 0.2);
  EXPECT_DOUBLE_EQ(delays[2], 0.4);
  EXPECT_DOUBLE_EQ(delays[3], 0.5);  // capped
  EXPECT_DOUBLE_EQ(delays[4], 0.5);
  EXPECT_DOUBLE_EQ(delays[5], 0.5);
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.attempts(), 6);
  // An exhausted backoff refuses without consuming or sleeping.
  bool slept = false;
  EXPECT_FALSE(b.retry([&](double) { slept = true; }));
  EXPECT_FALSE(slept);
  EXPECT_EQ(b.attempts(), 6);
}

TEST(BackoffTest, ZeroAttemptsNeverRetries) {
  util::BackoffPolicy p;
  p.maxAttempts = 0;
  util::Backoff b(p);
  EXPECT_TRUE(b.exhausted());
  EXPECT_FALSE(b.retry());
}

TEST(BackoffTest, NegativeAttemptsIsUnlimited) {
  util::BackoffPolicy p;
  p.maxAttempts = -1;
  util::Backoff b(p);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.retry());
  }
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.attempts(), 1000);
}

TEST(BackoffTest, JitterIsBoundedAndSeedDeterministic) {
  util::BackoffPolicy p;
  p.initialSeconds = 0.1;
  p.multiplier = 2.0;
  p.maxSeconds = 1.0;
  p.jitterFraction = 0.25;
  p.maxAttempts = 16;
  p.seed = 1234;
  util::Backoff a(p), b(p);
  const std::vector<double> da = drain(a);
  const std::vector<double> db = drain(b);
  // Same policy + seed => byte-identical delay schedule.
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_DOUBLE_EQ(da[i], db[i]) << "attempt " << i;
  }
  // Every delay stays inside [1-j, 1+j] of the un-jittered value.
  double base = p.initialSeconds;
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_GE(da[i], base * 0.75 - 1e-12) << "attempt " << i;
    EXPECT_LE(da[i], base * 1.25 + 1e-12) << "attempt " << i;
    base = std::min(base * p.multiplier, p.maxSeconds);
  }
  // A different seed draws a different schedule.
  p.seed = 4321;
  util::Backoff c(p);
  const std::vector<double> dc = drain(c);
  bool anyDiffer = false;
  for (std::size_t i = 0; i < dc.size(); ++i) {
    if (dc[i] != da[i]) anyDiffer = true;
  }
  EXPECT_TRUE(anyDiffer);
}

TEST(BackoffTest, ResetReplaysTheSameSchedule) {
  util::BackoffPolicy p;
  p.jitterFraction = 0.5;
  p.maxAttempts = 8;
  p.seed = 99;
  util::Backoff b(p);
  const std::vector<double> first = drain(b);
  b.reset();
  EXPECT_EQ(b.attempts(), 0);
  EXPECT_FALSE(b.exhausted());
  const std::vector<double> second = drain(b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]);
  }
}

TEST(BackoffTest, RetryWithoutSleeperStillConsumesBudget) {
  util::BackoffPolicy p;
  p.maxAttempts = 2;
  util::Backoff b(p);
  EXPECT_TRUE(b.retry());
  EXPECT_TRUE(b.retry());
  EXPECT_FALSE(b.retry());
  EXPECT_EQ(b.attempts(), 2);
}

TEST(BackoffTest, LastDelayTracksTheSleeperArgument) {
  util::BackoffPolicy p;
  p.initialSeconds = 0.3;
  p.jitterFraction = 0.0;
  p.maxAttempts = 1;
  util::Backoff b(p);
  double seen = -1.0;
  ASSERT_TRUE(b.retry([&](double s) { seen = s; }));
  EXPECT_DOUBLE_EQ(seen, 0.3);
  EXPECT_DOUBLE_EQ(b.lastDelaySeconds(), 0.3);
}

}  // namespace
}  // namespace fencetrade
