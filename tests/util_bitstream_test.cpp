#include "util/bitstream.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/mathx.h"
#include "util/rng.h"

namespace fencetrade::util {
namespace {

TEST(BitstreamTest, SingleBitsRoundTrip) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) w.writeBit(b);
  EXPECT_EQ(w.bitCount(), 7u);

  BitReader r(w.bytes(), w.bitCount());
  for (bool b : pattern) EXPECT_EQ(r.readBit(), b);
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.readBit(), CheckError);
}

TEST(BitstreamTest, FixedWidthRoundTrip) {
  BitWriter w;
  w.writeBits(0b101, 3);
  w.writeBits(0xDEADBEEF, 32);
  w.writeBits(1, 1);
  BitReader r(w.bytes(), w.bitCount());
  EXPECT_EQ(r.readBits(3), 0b101u);
  EXPECT_EQ(r.readBits(32), 0xDEADBEEFu);
  EXPECT_EQ(r.readBits(1), 1u);
}

TEST(BitstreamTest, GammaKnownCodes) {
  // gamma(1) = "1", gamma(2) = "010", gamma(3) = "011",
  // gamma(4) = "00100".
  BitWriter w;
  w.writeGamma(1);
  EXPECT_EQ(w.bitCount(), 1u);
  w.writeGamma(2);
  EXPECT_EQ(w.bitCount(), 4u);
  w.writeGamma(4);
  EXPECT_EQ(w.bitCount(), 9u);

  BitReader r(w.bytes(), w.bitCount());
  EXPECT_EQ(r.readGamma(), 1u);
  EXPECT_EQ(r.readGamma(), 2u);
  EXPECT_EQ(r.readGamma(), 4u);
}

TEST(BitstreamTest, GammaLengthIsLogarithmic) {
  for (std::uint64_t v : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 20}) {
    BitWriter w;
    w.writeGamma(v);
    EXPECT_EQ(w.bitCount(), 2 * ilog2Floor(v) + 1) << v;
  }
}

TEST(BitstreamTest, GammaRejectsZero) {
  BitWriter w;
  EXPECT_THROW(w.writeGamma(0), CheckError);
}

TEST(BitstreamTest, RandomGammaSequencesRoundTrip) {
  Rng rng(12);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<std::uint64_t> values;
    BitWriter w;
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t v = 1 + rng.below(1 << 16);
      values.push_back(v);
      w.writeGamma(v);
    }
    BitReader r(w.bytes(), w.bitCount());
    for (std::uint64_t v : values) EXPECT_EQ(r.readGamma(), v);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(BitstreamTest, MixedPayloadRoundTrip) {
  Rng rng(5);
  BitWriter w;
  std::vector<std::pair<int, std::uint64_t>> ops;  // (width or 0=gamma, v)
  for (int i = 0; i < 200; ++i) {
    if (rng.below(2) == 0) {
      const int width = static_cast<int>(1 + rng.below(16));
      const std::uint64_t v = rng.below(1ULL << width);
      ops.push_back({width, v});
      w.writeBits(v, width);
    } else {
      const std::uint64_t v = 1 + rng.below(1000);
      ops.push_back({0, v});
      w.writeGamma(v);
    }
  }
  BitReader r(w.bytes(), w.bitCount());
  for (auto [width, v] : ops) {
    if (width == 0) {
      EXPECT_EQ(r.readGamma(), v);
    } else {
      EXPECT_EQ(r.readBits(width), v);
    }
  }
}

TEST(BitstreamTest, ReaderRejectsOversizedBitCount) {
  std::vector<std::uint8_t> bytes{0xFF};
  EXPECT_THROW(BitReader(bytes, 9), CheckError);
}

}  // namespace
}  // namespace fencetrade::util
