// Fleet wire-protocol tests: every message round-trips, and every
// decoder treats its input as hostile — mutations and truncations must
// come back as nullopt (typed rejection at the FTCK layer), never as a
// crash, an overrun, or an uncaught exception.  The frame layer beneath
// has its own fuzz suite in util_frame_test.cpp.
#include <gtest/gtest.h>

#include <string>

#include "fleet/protocol.h"
#include "util/frame.h"

namespace fencetrade::fleet {
namespace {

JobMsg sampleJob() {
  JobMsg m;
  m.spec.lock = "gt2";
  m.spec.model = "PSO";
  m.spec.n = 2;
  m.spec.crashBudget = 1;
  m.shardIndex = 1;
  m.shardCount = 4;
  m.checkpointEvery = 32;
  m.heartbeatMs = 25;
  m.keys = {"key-a", std::string("bin\0key", 7)};
  m.frontier = {{{0, 3}, {1, -1}}, {}};
  m.baseSeq = 99;
  return m;
}

CheckpointMsg sampleCheckpoint() {
  CheckpointMsg m;
  m.newKeys = {"k1", "k2"};
  m.newOutcomes = {{0, 1}, {1, 0}};
  m.frontier = {{{1, 2}}};
  m.stats.admitted = 10;
  m.stats.expanded = 9;
  m.stats.forwarded = 3;
  m.stats.maxCsOccupancy = 1;
  m.ackSeq = 7;
  return m;
}

// Strip the outer frame so the decode* functions see their payload.
std::string payloadOf(const std::string& framed, std::uint32_t wantType) {
  util::FrameDecoder dec;
  dec.feed(framed);
  util::Frame f;
  EXPECT_EQ(dec.next(f), util::FrameDecoder::Status::Frame);
  EXPECT_EQ(f.type, wantType);
  return f.payload;
}

TEST(FleetProtocolTest, JobRoundTrips) {
  const JobMsg in = sampleJob();
  const auto out = decodeJob(payloadOf(encodeJob(in), kMsgJob));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->spec.lock, in.spec.lock);
  EXPECT_EQ(out->spec.model, in.spec.model);
  EXPECT_EQ(out->spec.n, in.spec.n);
  EXPECT_EQ(out->spec.crashBudget, in.spec.crashBudget);
  EXPECT_EQ(out->shardIndex, in.shardIndex);
  EXPECT_EQ(out->shardCount, in.shardCount);
  EXPECT_EQ(out->checkpointEvery, in.checkpointEvery);
  EXPECT_EQ(out->heartbeatMs, in.heartbeatMs);
  EXPECT_EQ(out->keys, in.keys);
  EXPECT_EQ(out->frontier, in.frontier);
  EXPECT_EQ(out->baseSeq, in.baseSeq);
}

TEST(FleetProtocolTest, ForwardRoundTrips) {
  ForwardMsg in;
  in.seq = 1234;
  in.path = {{0, -1}, {1, 5}, {0, 2}};
  const auto out = decodeForward(payloadOf(encodeForward(in), kMsgForward));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->seq, in.seq);
  EXPECT_EQ(out->path, in.path);

  ForwardOutMsg fo;
  fo.ownerShard = 3;
  fo.path = in.path;
  const auto back =
      decodeForwardOut(payloadOf(encodeForwardOut(fo), kMsgForwardOut));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ownerShard, 3);
  EXPECT_EQ(back->path, in.path);
}

TEST(FleetProtocolTest, HeartbeatCheckpointDoneRoundTrip) {
  HeartbeatMsg hb;
  hb.stats.admitted = 5;
  hb.stats.maxCsOccupancy = 2;
  hb.receivedSeq = 17;
  hb.idle = true;
  const auto hbOut =
      decodeHeartbeat(payloadOf(encodeHeartbeat(hb), kMsgHeartbeat));
  ASSERT_TRUE(hbOut.has_value());
  EXPECT_EQ(hbOut->stats.admitted, 5u);
  EXPECT_EQ(hbOut->stats.maxCsOccupancy, 2);
  EXPECT_EQ(hbOut->receivedSeq, 17u);
  EXPECT_TRUE(hbOut->idle);

  const CheckpointMsg ck = sampleCheckpoint();
  const auto ckOut =
      decodeCheckpoint(payloadOf(encodeCheckpoint(ck), kMsgCheckpoint));
  ASSERT_TRUE(ckOut.has_value());
  EXPECT_EQ(ckOut->newKeys, ck.newKeys);
  EXPECT_EQ(ckOut->newOutcomes, ck.newOutcomes);
  EXPECT_EQ(ckOut->frontier, ck.frontier);
  EXPECT_EQ(ckOut->ackSeq, ck.ackSeq);

  DoneMsg dn;
  dn.stats.expanded = 44;
  const auto dnOut = decodeDone(payloadOf(encodeDone(dn), kMsgDone));
  ASSERT_TRUE(dnOut.has_value());
  EXPECT_EQ(dnOut->stats.expanded, 44u);
}

TEST(FleetProtocolTest, CrossTypeDecodesRejectCleanly) {
  // Feeding one message's payload to another's decoder must yield
  // nullopt (or a structurally-valid misread is impossible thanks to
  // the FTCK atEnd check), never a crash.
  const std::string job = payloadOf(encodeJob(sampleJob()), kMsgJob);
  EXPECT_FALSE(decodeHeartbeat(job).has_value());
  EXPECT_FALSE(decodeDone(job).has_value());
  const std::string hb = [&] {
    HeartbeatMsg m;
    return payloadOf(encodeHeartbeat(m), kMsgHeartbeat);
  }();
  EXPECT_FALSE(decodeJob(hb).has_value());
}

TEST(FleetProtocolTest, FuzzedPayloadMutationsNeverCrashDecoders) {
  const std::string payloads[] = {
      payloadOf(encodeJob(sampleJob()), kMsgJob),
      payloadOf(encodeCheckpoint(sampleCheckpoint()), kMsgCheckpoint),
      payloadOf(encodeForward({}), kMsgForward),
      payloadOf(encodeHeartbeat({}), kMsgHeartbeat),
  };
  std::uint64_t state = 0xfee7f1ee7;
  auto next = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  int rejected = 0, accepted = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string bad = payloads[next() % 4];
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits && !bad.empty(); ++e) {
      const std::size_t i = next() % bad.size();
      switch (next() % 3) {
        case 0: bad[i] = static_cast<char>(bad[i] ^ (1 << (next() % 8))); break;
        case 1: bad[i] = static_cast<char>(next()); break;
        default: bad.resize(i); break;
      }
    }
    // Run every decoder over the mutant: each must return a value or
    // nullopt.  (A mutation the FTCK checksum can't see — there is no
    // checksum at this layer beyond the container's — may still decode;
    // that's the frame layer's job to prevent on the wire.)
    const bool any = decodeJob(bad).has_value() ||
                     decodeForward(bad).has_value() ||
                     decodeForwardOut(bad).has_value() ||
                     decodeHeartbeat(bad).has_value() ||
                     decodeCheckpoint(bad).has_value() ||
                     decodeDone(bad).has_value();
    any ? ++accepted : ++rejected;
  }
  // Sanity: the corpus actually exercised the rejection paths.
  EXPECT_GT(rejected, 1000);
}

}  // namespace
}  // namespace fencetrade::fleet
