#include "sim/solo.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/schedule.h"

namespace fencetrade::sim {
namespace {

TEST(SoloTest, StraightLineProgramTerminates) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  ProgramBuilder b("straight");
  LocalId x = b.local("x");
  b.writeRegImm(r, 1);
  b.fence();
  b.readReg(x, r);
  b.fence();
  b.ret(b.L(x));
  sys.programs.push_back(b.build());

  Config cfg = initialConfig(sys);
  SoloTerminationDecider solo(&sys);
  EXPECT_TRUE(solo.terminates(cfg, 0));
}

TEST(SoloTest, SpinOnForeignFlagDoesNotTerminate) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg flag = sys.layout.alloc(kNoOwner, "flag");
  // p0 spins until flag != 0 — alone it spins forever.
  ProgramBuilder b("spinner");
  LocalId x = b.local("x");
  b.loop([&] {
    b.readReg(x, flag);
    b.exitIf(b.ne(b.L(x), b.imm(0)));
  });
  b.fence();
  b.retImm(0);
  sys.programs.push_back(b.build());
  // p1 would set the flag, but a solo run of p0 never sees it.
  ProgramBuilder w("writer");
  w.writeRegImm(flag, 1);
  w.fence();
  w.retImm(0);
  sys.programs.push_back(w.build());

  Config cfg = initialConfig(sys);
  SoloTerminationDecider solo(&sys);
  EXPECT_FALSE(solo.terminates(cfg, 0));
  EXPECT_TRUE(solo.terminates(cfg, 1));
}

TEST(SoloTest, TerminationDependsOnMemoryContents) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg flag = sys.layout.alloc(kNoOwner, "flag");
  ProgramBuilder b("spinner");
  LocalId x = b.local("x");
  b.loop([&] {
    b.readReg(x, flag);
    b.exitIf(b.ne(b.L(x), b.imm(0)));
  });
  b.fence();
  b.retImm(0);
  sys.programs.push_back(b.build());
  ProgramBuilder w("writer");
  w.writeRegImm(flag, 1);
  w.fence();
  w.retImm(0);
  sys.programs.push_back(w.build());

  Config cfg = initialConfig(sys);
  SoloTerminationDecider solo(&sys);
  EXPECT_FALSE(solo.terminates(cfg, 0));

  // After the writer publishes the flag, the spinner terminates solo.
  runSolo(sys, cfg, 1, nullptr);
  EXPECT_TRUE(solo.terminates(cfg, 0));
}

TEST(SoloTest, DeciderDoesNotMutateInputConfig) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg r = sys.layout.alloc(kNoOwner, "r");
  ProgramBuilder b("w");
  b.writeRegImm(r, 5);
  b.fence();
  b.retImm(0);
  sys.programs.push_back(b.build());

  Config cfg = initialConfig(sys);
  SoloTerminationDecider solo(&sys);
  EXPECT_TRUE(solo.terminates(cfg, 0));
  EXPECT_FALSE(cfg.procs[0].final);
  EXPECT_EQ(cfg.readMem(r), 0);
  EXPECT_TRUE(cfg.buffers[0].empty());
}

TEST(SoloTest, MemoizationHitsOnRepeatedQueries) {
  System sys;
  sys.model = MemoryModel::PSO;
  Reg flag = sys.layout.alloc(kNoOwner, "flag");
  ProgramBuilder b("spin");
  LocalId x = b.local("x");
  b.loop([&] {
    b.readReg(x, flag);
    b.exitIf(b.ne(b.L(x), b.imm(0)));
  });
  b.fence();
  b.retImm(0);
  sys.programs.push_back(b.build());

  Config cfg = initialConfig(sys);
  SoloTerminationDecider solo(&sys);
  EXPECT_FALSE(solo.terminates(cfg, 0));
  EXPECT_FALSE(solo.terminates(cfg, 0));
  EXPECT_FALSE(solo.terminates(cfg, 0));
  EXPECT_EQ(solo.queries(), 3u);
  EXPECT_EQ(solo.memoHits(), 2u);
}

TEST(SoloTest, FinalProcessTerminatesTrivially) {
  System sys;
  sys.model = MemoryModel::PSO;
  sys.layout.alloc(kNoOwner, "r");
  ProgramBuilder b("ret");
  b.fence();
  b.retImm(0);
  sys.programs.push_back(b.build());
  Config cfg = initialConfig(sys);
  runSolo(sys, cfg, 0, nullptr);
  SoloTerminationDecider solo(&sys);
  EXPECT_TRUE(solo.terminates(cfg, 0));
}

}  // namespace
}  // namespace fencetrade::sim
