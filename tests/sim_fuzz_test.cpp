// Differential / property fuzzing of the simulated machine.
//
//  * single-process programs behave identically under SC, TSO and PSO
//    (write buffering is invisible to the issuing process);
//  * random multi-process systems satisfy model inclusion:
//    outcomes(SC) ⊆ outcomes(TSO) ⊆ outcomes(PSO) — the weaker machine
//    admits every behaviour of the stronger one;
//  * random runs never produce an outcome the exhaustive explorer
//    does not know about.
#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/explore.h"
#include "sim/litmus.h"
#include "sim/schedule.h"
#include "util/rng.h"

namespace fencetrade::sim {
namespace {

constexpr int kRegs = 3;

/// Emit a random straight-line block of ops (no loops, so exhaustive
/// exploration stays tiny).
void emitRandomOps(ProgramBuilder& b, util::Rng& rng, int ops,
                   LocalId scratch, LocalId acc) {
  for (int i = 0; i < ops; ++i) {
    switch (rng.below(4)) {
      case 0:  // write a random small value to a random register
        b.writeRegImm(static_cast<Reg>(rng.below(kRegs)),
                      static_cast<Value>(1 + rng.below(3)));
        break;
      case 1:  // read into scratch and fold into the accumulator
        b.readReg(scratch, static_cast<Reg>(rng.below(kRegs)));
        b.set(acc, b.add(b.mul(b.L(acc), b.imm(5)), b.L(scratch)));
        break;
      case 2:
        b.fence();
        break;
      case 3:  // local arithmetic only
        b.set(acc, b.add(b.L(acc), b.imm(static_cast<Value>(rng.below(7)))));
        break;
    }
  }
}

Program randomProgram(util::Rng& rng, const std::string& name, int ops) {
  ProgramBuilder b(name);
  LocalId scratch = b.local("scratch");
  LocalId acc = b.local("acc");
  b.set(acc, b.imm(0));
  emitRandomOps(b, rng, ops, scratch, acc);
  b.fence();
  b.ret(b.L(acc));
  return b.build();
}

System randomSystem(std::uint64_t seed, MemoryModel m, int procs, int ops) {
  util::Rng rng(seed);
  System sys;
  sys.model = m;
  for (int r = 0; r < kRegs; ++r) {
    sys.layout.alloc(kNoOwner, "r" + std::to_string(r));
  }
  for (int p = 0; p < procs; ++p) {
    sys.programs.push_back(
        randomProgram(rng, "fuzz#" + std::to_string(p), ops));
  }
  return sys;
}

TEST(FuzzTest, SoloBehaviourIdenticalAcrossModels) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Value retvals[3];
    std::map<Reg, Value> mems[3];
    int i = 0;
    for (auto m : {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
      System sys = randomSystem(seed, m, 1, 12);
      Config cfg = initialConfig(sys);
      ASSERT_TRUE(runSolo(sys, cfg, 0, nullptr)) << "seed " << seed;
      retvals[i] = cfg.procs[0].retval;
      for (auto& [r, v] : cfg.memory) {
        if (v != kInitValue) mems[i][r] = v;
      }
      ++i;
    }
    EXPECT_EQ(retvals[0], retvals[1]) << "seed " << seed;
    EXPECT_EQ(retvals[0], retvals[2]) << "seed " << seed;
    EXPECT_EQ(mems[0], mems[1]) << "seed " << seed;
    EXPECT_EQ(mems[0], mems[2]) << "seed " << seed;
  }
}

TEST(FuzzTest, ModelInclusionOnRandomSystems) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    auto sc = explore(randomSystem(seed, MemoryModel::SC, 2, 5));
    auto tso = explore(randomSystem(seed, MemoryModel::TSO, 2, 5));
    auto pso = explore(randomSystem(seed, MemoryModel::PSO, 2, 5));
    ASSERT_FALSE(pso.capped()) << "seed " << seed;
    for (const auto& o : sc.outcomes) {
      EXPECT_TRUE(tso.outcomes.count(o))
          << "seed " << seed << ": SC outcome missing under TSO";
    }
    for (const auto& o : tso.outcomes) {
      EXPECT_TRUE(pso.outcomes.count(o))
          << "seed " << seed << ": TSO outcome missing under PSO";
    }
  }
}

TEST(FuzzTest, RandomRunsProduceOnlyExploredOutcomes) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    System sys = randomSystem(seed, MemoryModel::PSO, 2, 5);
    auto all = explore(sys);
    ASSERT_FALSE(all.capped());
    for (std::uint64_t run = 0; run < 15; ++run) {
      System sys2 = randomSystem(seed, MemoryModel::PSO, 2, 5);
      Config cfg = initialConfig(sys2);
      util::Rng rng(run * 1337 + seed);
      auto res = runRandom(sys2, cfg, rng, 1 << 16);
      ASSERT_TRUE(res.completed);
      EXPECT_TRUE(all.outcomes.count(cfg.returnValues()))
          << "seed " << seed << " run " << run
          << ": random schedule reached an outcome the explorer missed";
    }
  }
}

TEST(FuzzTest, SeqlockLitmusAcceptedStaleOnlyUnderPso) {
  for (auto m : {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
    auto res = explore(litmusSeqlock(m));
    // 202 = reader saw SEQ==2 twice around a stale D read.
    EXPECT_EQ(res.outcomes.count({0, 202}) != 0, m == MemoryModel::PSO)
        << memoryModelName(m);
    // A clean accepted read (212) is possible everywhere.
    EXPECT_TRUE(res.outcomes.count({0, 212})) << memoryModelName(m);
  }
}

TEST(FuzzTest, ParallelMatchesSequentialOnRandomSystems) {
  // Differential fuzz of the parallel exploration engine against the
  // sequential oracle: 200 random small programs, identical outcome
  // sets and state counts required.  On failure the seed is printed;
  // reproduce with randomSystem(seed, MemoryModel::PSO, 2, 4).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr std::uint64_t kSeeds = 50;  // sanitizer CI time budget
#else
  constexpr std::uint64_t kSeeds = 200;
#endif
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    System sys = randomSystem(seed, MemoryModel::PSO, 2, 4);
    auto seq = explore(sys);
    ASSERT_FALSE(seq.capped()) << "seed " << seed;

    ExploreOptions opts;
    opts.workers = 2 + static_cast<int>(seed % 3);  // 2..4 workers
    auto par = explore(sys, opts);
    ASSERT_EQ(par.outcomes, seq.outcomes)
        << "seed " << seed << ": parallel explorer (workers="
        << opts.workers << ") missed or invented outcomes; reproduce "
        << "with randomSystem(" << seed << ", MemoryModel::PSO, 2, 4)";
    ASSERT_EQ(par.statesVisited, seq.statesVisited)
        << "seed " << seed << " (workers=" << opts.workers << ")";
    ASSERT_EQ(par.maxCsOccupancy, seq.maxCsOccupancy)
        << "seed " << seed << " (workers=" << opts.workers << ")";
  }
}

TEST(FuzzTest, ConfigInvariantsHoldAlongRandomWalks) {
  // Config::validate() checks the flat-container invariants (sorted,
  // duplicate-free, canonical memory, consistent memHash/nbFinal) the
  // explorer's zero-copy serialization relies on.  Walk random
  // schedules of random systems validating after every single step;
  // the sanitizer CI builds (FENCETRADE_SANITIZE) run a deeper sweep.
#ifdef FENCETRADE_SANITIZE
  constexpr std::uint64_t kSeeds = 30;
  constexpr int kSteps = 400;
#else
  constexpr std::uint64_t kSeeds = 12;
  constexpr int kSteps = 200;
#endif
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    for (auto m : {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
      System sys = randomSystem(seed, m, 2, 6);
      Config cfg = initialConfig(sys);
      ASSERT_NO_THROW(cfg.validate()) << "seed " << seed;
      util::Rng rng(seed * 31 + static_cast<std::uint64_t>(m));
      for (int step = 0; step < kSteps; ++step) {
        auto moves = detail::enabledMoves(cfg);
        if (moves.empty()) break;
        const auto& [p, r] = moves[rng.below(moves.size())];
        ASSERT_TRUE(execElem(sys, cfg, p, r).has_value());
        ASSERT_NO_THROW(cfg.validate())
            << "seed " << seed << " model " << memoryModelName(m)
            << " step " << step;
      }
    }
  }
}

TEST(FuzzTest, ScExplorationsHaveFewerOrEqualStates) {
  // Sanity on the exploration itself: buffering only adds states.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto sc = explore(randomSystem(seed, MemoryModel::SC, 2, 5));
    auto pso = explore(randomSystem(seed, MemoryModel::PSO, 2, 5));
    EXPECT_LE(sc.statesVisited, pso.statesVisited) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fencetrade::sim
