#include "sim/program.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "sim/machine.h"
#include "sim/schedule.h"
#include "util/check.h"

namespace fencetrade::sim {
namespace {

/// Runs a single-process system solo and returns the return value.
Value runProgram(Program prog, MemoryModel m = MemoryModel::PSO,
                 int extraRegs = 8) {
  System sys;
  sys.model = m;
  for (int i = 0; i < extraRegs; ++i) {
    sys.layout.alloc(kNoOwner, "r" + std::to_string(i));
  }
  sys.programs.push_back(std::move(prog));
  Config cfg = initialConfig(sys);
  const bool done = runSolo(sys, cfg, 0, nullptr);
  FT_CHECK(done);
  return cfg.procs[0].retval;
}

TEST(ProgramTest, ExpressionArithmetic) {
  ProgramBuilder b("arith");
  LocalId x = b.local("x");
  b.set(x, b.add(b.imm(3), b.mul(b.imm(4), b.imm(5))));    // 23
  b.set(x, b.sub(b.L(x), b.imm(3)));                        // 20
  b.set(x, b.div(b.L(x), b.imm(3)));                        // 6
  b.set(x, b.mod(b.L(x), b.imm(4)));                        // 2
  b.set(x, b.max(b.L(x), b.min(b.imm(10), b.imm(7))));      // 7
  b.ret(b.L(x));
  EXPECT_EQ(runProgram(b.build()), 7);
}

TEST(ProgramTest, ComparisonAndLogicalOperators) {
  ProgramBuilder b("cmp");
  LocalId x = b.local("x");
  // (1 < 2) && (2 <= 2) && (3 == 3) && (3 != 4) && !(0) -> 1
  b.set(x, b.land(b.lt(b.imm(1), b.imm(2)),
                  b.land(b.le(b.imm(2), b.imm(2)),
                         b.land(b.eq(b.imm(3), b.imm(3)),
                                b.land(b.ne(b.imm(3), b.imm(4)),
                                       b.lnot(b.imm(0)))))));
  b.set(x, b.lor(b.imm(0), b.L(x)));
  b.ret(b.L(x));
  EXPECT_EQ(runProgram(b.build()), 1);
}

TEST(ProgramTest, DivisionByZeroThrows) {
  ProgramBuilder b("div0");
  LocalId x = b.local("x");
  b.set(x, b.div(b.imm(1), b.imm(0)));
  b.ret(b.L(x));
  EXPECT_THROW(runProgram(b.build()), util::CheckError);
}

TEST(ProgramTest, ForRangeSumsCorrectly) {
  ProgramBuilder b("sum");
  LocalId i = b.local("i");
  LocalId acc = b.local("acc");
  b.set(acc, b.imm(0));
  b.forRange(i, 0, 10, [&] { b.set(acc, b.add(b.L(acc), b.L(i))); });
  b.ret(b.L(acc));
  EXPECT_EQ(runProgram(b.build()), 45);
}

TEST(ProgramTest, ForRangeEmptyRangeSkipsBody) {
  ProgramBuilder b("empty-range");
  LocalId i = b.local("i");
  LocalId acc = b.local("acc");
  b.set(acc, b.imm(7));
  b.forRange(i, 5, 5, [&] { b.set(acc, b.imm(0)); });
  b.ret(b.L(acc));
  EXPECT_EQ(runProgram(b.build()), 7);
}

TEST(ProgramTest, IfThenElseBothBranches) {
  for (Value cond : {0, 1}) {
    ProgramBuilder b("ite");
    LocalId x = b.local("x");
    b.ifThenElse(
        b.imm(cond), [&] { b.set(x, b.imm(100)); },
        [&] { b.set(x, b.imm(200)); });
    b.ret(b.L(x));
    EXPECT_EQ(runProgram(b.build()), cond ? 100 : 200);
  }
}

TEST(ProgramTest, LoopWithExitIfTerminates) {
  ProgramBuilder b("loop");
  LocalId i = b.local("i");
  b.set(i, b.imm(0));
  b.loop([&] {
    b.set(i, b.add(b.L(i), b.imm(3)));
    b.exitIf(b.le(b.imm(10), b.L(i)));
  });
  b.ret(b.L(i));
  EXPECT_EQ(runProgram(b.build()), 12);
}

TEST(ProgramTest, NestedLoopsExitInnermost) {
  ProgramBuilder b("nested");
  LocalId i = b.local("i");
  LocalId total = b.local("total");
  b.set(total, b.imm(0));
  b.forRange(i, 0, 3, [&] {
    LocalId j = b.local("j" /* fresh per build, fine */);
    b.set(j, b.imm(0));
    b.loop([&] {
      b.exitIf(b.eq(b.L(j), b.imm(4)));
      b.set(total, b.add(b.L(total), b.imm(1)));
      b.set(j, b.add(b.L(j), b.imm(1)));
    });
  });
  b.ret(b.L(total));
  EXPECT_EQ(runProgram(b.build()), 12);
}

TEST(ProgramTest, ReadAndWriteSharedMemory) {
  ProgramBuilder b("rw");
  LocalId x = b.local("x");
  b.writeRegImm(2, 99);
  b.fence();
  b.readReg(x, 2);
  b.ret(b.L(x));
  EXPECT_EQ(runProgram(b.build()), 99);
}

TEST(ProgramTest, DynamicAddressing) {
  ProgramBuilder b("dyn");
  LocalId i = b.local("i");
  LocalId x = b.local("x");
  // write r[3+1] = 5 via computed address, read it back.
  b.set(i, b.imm(3));
  b.write(b.add(b.L(i), b.imm(1)), b.imm(5));
  b.fence();
  b.read(x, b.add(b.L(i), b.imm(1)));
  b.ret(b.L(x));
  EXPECT_EQ(runProgram(b.build()), 5);
}

TEST(ProgramTest, ValidateRejectsMissingReturn) {
  ProgramBuilder b("noret");
  LocalId x = b.local("x");
  b.set(x, b.imm(1));
  EXPECT_THROW(b.build(), util::CheckError);
}

TEST(ProgramTest, ValidateRejectsUnboundLabel) {
  ProgramBuilder b("unbound");
  int label = b.newLabel();
  b.jmp(label);
  b.retImm(0);
  EXPECT_THROW(b.build(), util::CheckError);
}

TEST(ProgramTest, ExitIfOutsideLoopThrows) {
  ProgramBuilder b("badexit");
  EXPECT_THROW(b.exitIf(b.imm(1)), util::CheckError);
}

TEST(ProgramTest, CsMarkersRecorded) {
  ProgramBuilder b("cs");
  LocalId x = b.local("x");
  b.readReg(x, 0);
  b.csBegin();
  b.writeRegImm(0, 1);
  b.fence();
  b.csEnd();
  b.retImm(0);
  Program p = b.build();
  EXPECT_GE(p.csBegin, 0);
  EXPECT_GT(p.csEnd, p.csBegin);
}

TEST(ProgramTest, DoubleCsBeginThrows) {
  ProgramBuilder b("cs2");
  b.csBegin();
  EXPECT_THROW(b.csBegin(), util::CheckError);
}

TEST(ProgramTest, DisassembleMentionsOperations) {
  ProgramBuilder b("disasm");
  LocalId x = b.local("x");
  b.readReg(x, 3);
  b.writeReg(4, b.L(x));
  b.fence();
  b.ret(b.L(x));
  const std::string d = b.build().disassemble();
  EXPECT_NE(d.find("read"), std::string::npos);
  EXPECT_NE(d.find("write"), std::string::npos);
  EXPECT_NE(d.find("fence"), std::string::npos);
  EXPECT_NE(d.find("return"), std::string::npos);
}

TEST(ProgramTest, PureInfiniteLoopDetected) {
  ProgramBuilder b("pure-loop");
  int start = b.newLabel();
  b.bind(start);
  b.jmp(start);
  b.retImm(0);  // unreachable, satisfies validate
  Program p = b.build();
  System sys;
  sys.model = MemoryModel::PSO;
  sys.layout.alloc(kNoOwner, "r");
  sys.programs.push_back(p);
  EXPECT_THROW(initialConfig(sys), util::CheckError);
}

}  // namespace
}  // namespace fencetrade::sim
