#include "sim/schedule.h"

#include <gtest/gtest.h>

#include "sim/builder.h"
#include "util/check.h"

namespace fencetrade::sim {
namespace {

/// n processes that each increment a shared counter once, unprotected:
/// read C; write C+1; fence; return value read.
System unprotectedIncrementers(MemoryModel m, int n) {
  System sys;
  sys.model = m;
  Reg c = sys.layout.alloc(kNoOwner, "C");
  for (int p = 0; p < n; ++p) {
    ProgramBuilder b("inc#" + std::to_string(p));
    LocalId x = b.local("x");
    b.readReg(x, c);
    b.writeReg(c, b.add(b.L(x), b.imm(1)));
    b.fence();
    b.ret(b.L(x));
    sys.programs.push_back(b.build());
  }
  return sys;
}

TEST(ScheduleTest, RunSoloCompletesAndRecordsSteps) {
  System sys = unprotectedIncrementers(MemoryModel::PSO, 1);
  Config cfg = initialConfig(sys);
  Execution exec;
  EXPECT_TRUE(runSolo(sys, cfg, 0, &exec));
  EXPECT_TRUE(cfg.procs[0].final);
  EXPECT_EQ(cfg.procs[0].retval, 0);
  StepCounts c = countSteps(exec, 1);
  EXPECT_EQ(c.reads, 1);
  EXPECT_EQ(c.writes, 1);
  EXPECT_EQ(c.commits, 1);
  EXPECT_EQ(c.fences, 1);
}

TEST(ScheduleTest, RunSoloRespectsStepCap) {
  System sys = unprotectedIncrementers(MemoryModel::PSO, 1);
  Config cfg = initialConfig(sys);
  EXPECT_FALSE(runSolo(sys, cfg, 0, nullptr, 2));
  EXPECT_FALSE(cfg.procs[0].final);
}

TEST(ScheduleTest, RunSequentialOrdersReturnValues) {
  System sys = unprotectedIncrementers(MemoryModel::PSO, 4);
  Config cfg = initialConfig(sys);
  // Run in order 2, 0, 3, 1: return values follow the sequence.
  runSequential(sys, cfg, {2, 0, 3, 1});
  EXPECT_EQ(cfg.procs[2].retval, 0);
  EXPECT_EQ(cfg.procs[0].retval, 1);
  EXPECT_EQ(cfg.procs[3].retval, 2);
  EXPECT_EQ(cfg.procs[1].retval, 3);
  EXPECT_EQ(cfg.readMem(0), 4);
}

TEST(ScheduleTest, RunRoundRobinCompletesIndependentWork) {
  System sys = unprotectedIncrementers(MemoryModel::PSO, 5);
  Config cfg = initialConfig(sys);
  auto res = runRoundRobin(sys, cfg, 1 << 16);
  EXPECT_TRUE(res.completed);
  EXPECT_TRUE(allFinal(cfg));
}

TEST(ScheduleTest, RunRandomCompletesAndIsSeedDeterministic) {
  System sysA = unprotectedIncrementers(MemoryModel::PSO, 4);
  System sysB = unprotectedIncrementers(MemoryModel::PSO, 4);
  Config cfgA = initialConfig(sysA);
  Config cfgB = initialConfig(sysB);
  util::Rng rngA(99), rngB(99);
  auto resA = runRandom(sysA, cfgA, rngA, 1 << 16);
  auto resB = runRandom(sysB, cfgB, rngB, 1 << 16);
  ASSERT_TRUE(resA.completed);
  ASSERT_TRUE(resB.completed);
  ASSERT_EQ(resA.exec.size(), resB.exec.size());
  for (std::size_t i = 0; i < resA.exec.size(); ++i) {
    EXPECT_EQ(resA.exec[i].p, resB.exec[i].p);
    EXPECT_EQ(static_cast<int>(resA.exec[i].kind),
              static_cast<int>(resB.exec[i].kind));
  }
}

TEST(ScheduleTest, UnprotectedCountersCanLoseUpdatesUnderContention) {
  // Sanity check that the harness actually interleaves: across seeds,
  // some random run must exhibit a lost update (two equal returns).
  bool lost = false;
  for (std::uint64_t seed = 0; seed < 50 && !lost; ++seed) {
    System sys = unprotectedIncrementers(MemoryModel::PSO, 3);
    Config cfg = initialConfig(sys);
    util::Rng rng(seed);
    auto res = runRandom(sys, cfg, rng, 1 << 16);
    FT_CHECK(res.completed);
    std::set<Value> returns;
    for (const auto& ps : cfg.procs) returns.insert(ps.retval);
    if (returns.size() < 3) lost = true;
  }
  EXPECT_TRUE(lost) << "random scheduler never interleaved the counter";
}

}  // namespace
}  // namespace fencetrade::sim
