// Ledger robustness: torn-tail tolerance of the NDJSON reader and the
// optional fleet sub-object of the run-record writer.
//
// The torn-tail scenario is the one a crashed (or chaos-killed) fleet
// run actually produces: appendLineAtomic writes line+'\n' in a single
// O_APPEND write(2), so the only partial shape a reader can ever see is
// a final line missing its newline.  Every complete record before it
// must survive, and the tear must surface as a *counted warning*, not a
// parse error and never a crash.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "check/ledger.h"
#include "util/checkpoint.h"

namespace fencetrade::check {
namespace {

class LedgerFileTest : public ::testing::Test {
 protected:
  std::string path_;

  void SetUp() override {
    path_ = ::testing::TempDir() + "ledger_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".ndjson";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  RunLedgerRecord record(const char* subject) {
    RunLedgerRecord rec;
    rec.tool = "test";
    rec.subject = subject;
    rec.model = "PSO";
    rec.n = 2;
    rec.argv = "test argv";
    rec.verdict = "correct";
    rec.stopReason = "complete";
    rec.wallSeconds = 0.5;
    rec.statesVisited = 100;
    return rec;
  }
};

TEST_F(LedgerFileTest, ReadsCompleteRecords) {
  ASSERT_TRUE(appendRunLedger(path_, record("a")));
  ASSERT_TRUE(appendRunLedger(path_, record("b")));
  const auto res = readLedgerLines(path_);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->lines.size(), 2u);
  EXPECT_EQ(res->tornTailRecords, 0);
  EXPECT_TRUE(res->tornTail.empty());
  EXPECT_NE(res->lines[0].find("\"subject\":\"a\""), std::string::npos);
  EXPECT_NE(res->lines[1].find("\"subject\":\"b\""), std::string::npos);
}

TEST_F(LedgerFileTest, TornTailIsSkippedCountedAndPreserved) {
  ASSERT_TRUE(appendRunLedger(path_, record("intact")));
  // Simulate a crash mid-append: a record whose newline (and tail)
  // never made it to disk.
  const std::string full = runLedgerLine(record("torn"));
  const std::string partial = full.substr(0, full.size() / 2);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out << partial;  // no newline
  }
  const auto res = readLedgerLines(path_);
  ASSERT_TRUE(res.has_value());
  ASSERT_EQ(res->lines.size(), 1u);
  EXPECT_NE(res->lines[0].find("\"subject\":\"intact\""), std::string::npos);
  EXPECT_EQ(res->tornTailRecords, 1);
  EXPECT_EQ(res->tornTail, partial);
}

TEST_F(LedgerFileTest, TornTailOnlyFileYieldsZeroRecords) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "{\"schema\":\"fencetrade-run/1\",\"tru";  // no newline
  }
  const auto res = readLedgerLines(path_);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->lines.empty());
  EXPECT_EQ(res->tornTailRecords, 1);
}

TEST_F(LedgerFileTest, EmptyFileIsCleanlyEmpty) {
  { std::ofstream out(path_, std::ios::binary); }
  const auto res = readLedgerLines(path_);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->lines.empty());
  EXPECT_EQ(res->tornTailRecords, 0);
}

TEST_F(LedgerFileTest, MissingFileIsNullopt) {
  EXPECT_FALSE(readLedgerLines(path_ + ".does-not-exist").has_value());
}

TEST(RunLedgerLineTest, FleetSubObjectEmittedOnlyWhenSet) {
  RunLedgerRecord rec;
  rec.tool = "fencetrade_fleet";
  rec.subject = "gt2";
  EXPECT_EQ(runLedgerLine(rec).find("\"fleet\""), std::string::npos);

  rec.fleet.set = true;
  rec.fleet.workersProc = 4;
  rec.fleet.respawns = 3;
  rec.fleet.retriesExhausted = 1;
  rec.fleet.shardsFailed = 1;
  rec.fleet.chaosKills = 2;
  rec.fleet.chaosStalls = 1;
  rec.fleet.chaosCorruptions = 0;
  rec.fleet.stallsDetected = 1;
  rec.fleet.protocolErrors = 0;
  const std::string line = runLedgerLine(rec);
  EXPECT_NE(
      line.find("\"fleet\":{\"workersProc\":4,\"respawns\":3,"
                "\"retriesExhausted\":1,\"shardsFailed\":1,\"chaosKills\":2,"
                "\"chaosStalls\":1,\"chaosCorruptions\":0,"
                "\"stallsDetected\":1,\"protocolErrors\":0}"),
      std::string::npos)
      << line;
  // Still one line, still a JSON object.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

}  // namespace
}  // namespace fencetrade::check
