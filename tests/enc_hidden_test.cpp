// End-to-end exercise of the wait-hidden-commit machinery (paper,
// Section 5.2, case E2b with γ > 0): with an Unowned register layout and
// a shared scratch write riding in the doorway batch, later processes
// race ahead, stall at their first fence, and have their scratch writes
// hidden by earlier processes' commits.
#include <gtest/gtest.h>

#include "core/bakery.h"
#include "core/objects.h"
#include "encoding/encoder.h"
#include "util/permutation.h"

namespace fencetrade::enc {
namespace {

using core::BakeryVariant;
using core::SegmentPolicy;
using sim::MemoryModel;
using sim::StepKind;

core::OrderingSystem scratchSystem(int n, SegmentPolicy policy) {
  return core::buildScratchCountSystem(
      MemoryModel::PSO, n,
      core::bakeryFactory(BakeryVariant::Lamport, policy));
}

util::Permutation reversed(int n) {
  util::Permutation pi;
  for (int k = n - 1; k >= 0; --k) pi.push_back(k);
  return pi;
}

TEST(HiddenCommitTest, ScratchWritesGetHiddenUnderUnownedLayout) {
  for (int n : {3, 4, 5}) {
    auto os = scratchSystem(n, SegmentPolicy::Unowned);
    Encoder enc(&os.sys);
    EncodeOptions opts;
    opts.checkInvariants = true;
    auto res = enc.encode(reversed(n), opts);
    EXPECT_EQ(res.finalDecode.hiddenCommits, n - 1) << "n=" << n;
    EXPECT_EQ(res.stackStats.countOf[static_cast<int>(
                  CommandKind::WaitHiddenCommit)],
              n - 1)
        << "n=" << n;
  }
}

TEST(HiddenCommitTest, PerProcessLayoutSerializesInsteadOfHiding) {
  // With per-process segments, every earlier process scans p_ℓ's
  // doorway registers, so E1 emits wait-local-finish and p_ℓ cannot
  // race ahead: no batch is ever hidden.
  for (int n : {3, 4, 5}) {
    auto os = scratchSystem(n, SegmentPolicy::PerProcess);
    Encoder enc(&os.sys);
    auto res = enc.encode(reversed(n));
    EXPECT_EQ(res.finalDecode.hiddenCommits, 0) << "n=" << n;
    EXPECT_GT(res.stackStats.countOf[static_cast<int>(
                  CommandKind::WaitLocalFinish)],
              0)
        << "n=" << n;
  }
}

TEST(HiddenCommitTest, OrderingStillHoldsWithHiddenBatches) {
  const int n = 5;
  auto os = scratchSystem(n, SegmentPolicy::Unowned);
  Encoder enc(&os.sys);
  auto pi = reversed(n);
  auto res = enc.encode(pi);
  for (int k = 0; k < n; ++k) {
    EXPECT_EQ(res.finalDecode.config.procs[pi[k]].retval, k);
  }
}

TEST(HiddenCommitTest, HiddenWritesAreOverwrittenBeforeAnyRead) {
  // Claim 5.8 observable: after a hidden commit to R, the next step
  // touching R is a commit by a *different* process — the hidden value
  // is never read.
  const int n = 5;
  auto os = scratchSystem(n, SegmentPolicy::Unowned);
  Encoder enc(&os.sys);
  auto res = enc.encode(reversed(n));
  const auto& exec = res.finalDecode.exec;
  const auto& hidden = res.finalDecode.hidden;
  ASSERT_EQ(exec.size(), hidden.size());
  int checked = 0;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (!hidden[i]) continue;
    ASSERT_EQ(exec[i].kind, StepKind::Commit);
    const sim::Reg r = exec[i].reg;
    for (std::size_t j = i + 1; j < exec.size(); ++j) {
      if (exec[j].reg != r) continue;
      if (exec[j].kind == StepKind::Read) {
        FAIL() << "hidden value of register " << r << " was read at step "
               << j;
      }
      if (exec[j].kind == StepKind::Commit) {
        EXPECT_NE(exec[j].p, exec[i].p)
            << "hidden commit must be overwritten by another process";
        ++checked;
        break;
      }
    }
  }
  EXPECT_EQ(checked, n - 1);
}

TEST(HiddenCommitTest, RandomPermutationsKeepInvariants) {
  const int n = 5;
  util::Rng rng(77);
  for (int rep = 0; rep < 4; ++rep) {
    auto pi = util::randomPermutation(n, rng);
    auto os = scratchSystem(n, SegmentPolicy::Unowned);
    Encoder enc(&os.sys);
    EncodeOptions opts;
    opts.checkInvariants = true;
    auto res = enc.encode(pi, opts);
    // Ordering must hold whatever was hidden.
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(res.finalDecode.config.procs[pi[k]].retval, k)
          << "rep " << rep;
    }
  }
}

TEST(HiddenCommitTest, CodesStillDistinguishPermutations) {
  const int n = 4;
  std::set<std::string> codes;
  for (const auto& pi : util::allPermutations(n)) {
    auto os = scratchSystem(n, SegmentPolicy::Unowned);
    Encoder enc(&os.sys);
    auto res = enc.encode(pi);
    std::string serialized;
    for (const auto& st : res.stacks) serialized += st.toString() + ";";
    codes.insert(serialized);
  }
  EXPECT_EQ(codes.size(), 24u);
}

}  // namespace
}  // namespace fencetrade::enc
