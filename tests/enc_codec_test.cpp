// Bit-level code serialization: the information-theoretic argument made
// concrete — real bitstrings, one per permutation, all distinct, whose
// measured lengths obey the paper's accounting.
#include "encoding/codec.h"

#include <gtest/gtest.h>

#include <set>

#include "core/bakery.h"
#include "core/objects.h"
#include "encoding/encoder.h"
#include "util/check.h"
#include "util/permutation.h"

namespace fencetrade::enc {
namespace {

using core::bakeryFactory;
using core::buildCountSystem;
using sim::MemoryModel;

TEST(CodecTest, HandBuiltStacksRoundTrip) {
  StackSequence stacks(3);
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::commit());
  stacks[1].pushBottom(Command::waitLocalFinish(2));
  stacks[1].pushBottom(Command::proceed());
  stacks[1].pushBottom(Command::waitHiddenCommit(7));
  // stacks[2] stays empty.

  auto code = serializeStacks(stacks);
  EXPECT_GT(code.bits, 0u);
  auto parsed = parseStacks(code, 3);
  EXPECT_TRUE(stacksEqual(stacks, parsed));
}

TEST(CodecTest, EmptySequenceSerializes) {
  StackSequence stacks(4);
  auto code = serializeStacks(stacks);
  auto parsed = parseStacks(code, 4);
  EXPECT_TRUE(stacksEqual(stacks, parsed));
}

TEST(CodecTest, RejectsNonPristineStacks) {
  StackSequence stacks(1);
  Command cmd = Command::waitReadFinish(1);
  cmd.waitSet.insert(0);
  stacks[0].pushBottom(cmd);
  EXPECT_THROW(serializeStacks(stacks), util::CheckError);
}

TEST(CodecTest, ParseRejectsWrongProcessCount) {
  StackSequence stacks(2);
  stacks[0].pushBottom(Command::proceed());
  auto code = serializeStacks(stacks);
  // Asking for 3 stacks runs off the end; asking for 1 leaves data.
  EXPECT_THROW(parseStacks(code, 3), util::CheckError);
  EXPECT_THROW(parseStacks(code, 1), util::CheckError);
}

TEST(CodecTest, EncoderOutputRoundTripsAndRedecodes) {
  const int n = 4;
  util::Rng rng(8);
  auto pi = util::randomPermutation(n, rng);
  auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
  Encoder enc(&os.sys);
  auto res = enc.encode(pi);

  // π -> stacks -> BITS -> stacks -> execution -> π: the full loop.
  auto code = serializeStacks(res.stacks);
  auto parsed = parseStacks(code, n);
  ASSERT_TRUE(stacksEqual(res.stacks, parsed));

  Decoder dec(&os.sys);
  auto replay = dec.decode(parsed);
  for (int k = 0; k < n; ++k) {
    ASSERT_TRUE(replay.config.procs[pi[k]].final);
    EXPECT_EQ(replay.config.procs[pi[k]].retval, k);
  }
}

TEST(CodecTest, DistinctPermutationsYieldDistinctBitstrings) {
  const int n = 4;
  std::set<std::vector<std::uint8_t>> codes;
  for (const auto& pi : util::allPermutations(n)) {
    auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
    Encoder enc(&os.sys);
    auto res = enc.encode(pi);
    codes.insert(serializeStacks(res.stacks).bytes);
  }
  EXPECT_EQ(codes.size(), 24u);  // n! distinct physical codes
}

TEST(CodecTest, MeasuredBitsTrackAccountingFormula) {
  // The serialized length and the analytic B(E) use the same structure
  // (constant opcode + logarithmic parameter), so they agree within a
  // small constant factor plus the per-stack length headers.
  util::Rng rng(21);
  for (int n : {4, 8, 16}) {
    auto pi = util::randomPermutation(n, rng);
    auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
    Encoder enc(&os.sys);
    auto res = enc.encode(pi);
    auto code = serializeStacks(res.stacks);
    const double analytic = res.codeBits();
    EXPECT_GE(static_cast<double>(code.bits), 0.5 * analytic) << "n=" << n;
    EXPECT_LE(static_cast<double>(code.bits), 2.0 * analytic + 16.0 * n)
        << "n=" << n;
  }
}

TEST(CodecTest, CodeLengthBeatsNaiveStepListing) {
  // The whole point of the batch encoding: the code grows like
  // β·log(ρ/β) ~ n·log n while the execution it determines has ~n²
  // steps — a naive one-record-per-step listing is asymptotically
  // larger, and already concretely larger at n = 16.
  const int n = 16;
  util::Rng rng(30);
  auto pi = util::randomPermutation(n, rng);
  auto os = buildCountSystem(MemoryModel::PSO, n, bakeryFactory());
  Encoder enc(&os.sys);
  auto res = enc.encode(pi);
  auto code = serializeStacks(res.stacks);
  EXPECT_LT(static_cast<std::int64_t>(code.bits), res.counts.steps);
  // And the per-step ratio shrinks as n grows (spot-check vs n = 4).
  auto os4 = buildCountSystem(MemoryModel::PSO, 4, bakeryFactory());
  Encoder enc4(&os4.sys);
  auto res4 = enc4.encode(util::identityPermutation(4));
  auto code4 = serializeStacks(res4.stacks);
  const double ratio4 =
      static_cast<double>(code4.bits) / static_cast<double>(res4.counts.steps);
  const double ratio16 =
      static_cast<double>(code.bits) / static_cast<double>(res.counts.steps);
  EXPECT_LT(ratio16, ratio4);
}

}  // namespace
}  // namespace fencetrade::enc
