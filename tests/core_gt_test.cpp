#include "core/gt.h"

#include <gtest/gtest.h>

#include "core/objects.h"
#include "core/tradeoff.h"
#include "sim/schedule.h"
#include "util/mathx.h"

namespace fencetrade::core {
namespace {

using sim::MemoryModel;

TEST(GtTest, DegeneratesToBakeryAtHeightOne) {
  sim::MemoryLayout layout;
  GeneralizedTournamentLock gt(layout, 8, 1);
  EXPECT_EQ(gt.height(), 1);
  EXPECT_EQ(gt.branching(), 8);
  EXPECT_EQ(gt.fencesPerPassage(), 4);
}

TEST(GtTest, BinaryTournamentAtFullHeight) {
  sim::MemoryLayout layout;
  GeneralizedTournamentLock gt(layout, 8, 3);
  EXPECT_EQ(gt.height(), 3);
  EXPECT_EQ(gt.branching(), 2);
  EXPECT_EQ(gt.fencesPerPassage(), 12);
}

TEST(GtTest, HeightClampedToLogN) {
  sim::MemoryLayout layout;
  GeneralizedTournamentLock gt(layout, 8, 10);
  EXPECT_EQ(gt.height(), 3);  // ceil(log2 8)
  EXPECT_EQ(gt.branching(), 2);
}

TEST(GtTest, IntermediateHeightUsesRootOfN) {
  sim::MemoryLayout layout;
  GeneralizedTournamentLock gt(layout, 16, 2);
  EXPECT_EQ(gt.branching(), 4);  // 16^(1/2)
}

TEST(GtTest, PathNodeAndSlotConsistent) {
  sim::MemoryLayout layout;
  GeneralizedTournamentLock gt(layout, 27, 3);  // b = 3
  EXPECT_EQ(gt.branching(), 3);
  for (int p = 0; p < 27; ++p) {
    // Root: everyone is in node 0; slot = top-level digit.
    EXPECT_EQ(gt.nodeOf(p, 3), 0);
    EXPECT_EQ(gt.slotOf(p, 3), p / 9);
    // Bottom level: node = p/3, slot = p%3.
    EXPECT_EQ(gt.nodeOf(p, 1), p / 3);
    EXPECT_EQ(gt.slotOf(p, 1), p % 3);
  }
}

TEST(GtTest, SequentialPassagesOrderedForAllHeights) {
  const int n = 8;
  for (int f = 1; f <= 3; ++f) {
    auto os = buildCountSystem(MemoryModel::PSO, n, gtFactory(f));
    sim::Config cfg = sim::initialConfig(os.sys);
    std::vector<sim::ProcId> order{5, 2, 7, 0, 3, 6, 1, 4};
    sim::runSequential(os.sys, cfg, order);
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(cfg.procs[order[k]].retval, k) << "f=" << f;
    }
  }
}

TEST(GtTest, SoloFenceCountIsFourPerLevelPlusCs) {
  const int n = 16;
  for (int f = 1; f <= 4; ++f) {
    auto os = buildCountSystem(MemoryModel::PSO, n, gtFactory(f));
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::Execution exec;
    ASSERT_TRUE(sim::runSolo(os.sys, cfg, 0, &exec));
    auto counts = sim::countSteps(exec, n);
    // 4 fences per level + 1 in the Count critical section.
    EXPECT_EQ(counts.fencesPerProc[0], 4 * f + 1) << "f=" << f;
  }
}

TEST(GtTest, SoloRmrsFollowFTimesNthRoot) {
  const int n = 64;
  for (int f : {1, 2, 3, 6}) {
    auto os = buildCountSystem(MemoryModel::PSO, n, gtFactory(f));
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::Execution exec;
    ASSERT_TRUE(sim::runSolo(os.sys, cfg, 0, &exec));
    const auto rmrs = sim::countSteps(exec, n).rmrsPerProc[0];
    const auto bound = gtRmrBound(n, f);
    // Within a small constant factor of f * n^{1/f} (plus the counter).
    EXPECT_GE(rmrs, bound / 2) << "f=" << f;
    EXPECT_LE(rmrs, 4 * bound + 8) << "f=" << f;
  }
}

TEST(GtTest, RmrsDecreaseWithHeightUncontended) {
  const int n = 64;
  std::vector<std::int64_t> rmrs;
  for (int f : {1, 2, 3, 6}) {
    auto os = buildCountSystem(MemoryModel::PSO, n, gtFactory(f));
    sim::Config cfg = sim::initialConfig(os.sys);
    sim::Execution exec;
    ASSERT_TRUE(sim::runSolo(os.sys, cfg, 0, &exec));
    rmrs.push_back(sim::countSteps(exec, n).rmrsPerProc[0]);
  }
  // Bakery (f=1) is the RMR-worst; the binary tournament the best.
  EXPECT_GT(rmrs.front(), rmrs.back());
  for (std::size_t i = 1; i < rmrs.size(); ++i) {
    EXPECT_LE(rmrs[i], rmrs[i - 1] + 2) << "non-monotone at " << i;
  }
}

TEST(GtTest, RandomContentionStressAllHeights) {
  const int n = 5;
  for (int f = 1; f <= 3; ++f) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      auto os = buildCountSystem(MemoryModel::PSO, n, gtFactory(f));
      sim::Config cfg = sim::initialConfig(os.sys);
      util::Rng rng(seed * 31 + f);
      auto run = sim::runRandom(os.sys, cfg, rng, 1 << 20);
      ASSERT_TRUE(run.completed) << "f=" << f << " seed=" << seed;
      std::set<sim::Value> returns;
      for (const auto& ps : cfg.procs) returns.insert(ps.retval);
      EXPECT_EQ(returns.size(), static_cast<std::size_t>(n))
          << "f=" << f << " seed=" << seed;
    }
  }
}

TEST(GtTest, TournamentFactoryPicksLogHeight) {
  sim::MemoryLayout layout;
  auto lock = tournamentFactory()(layout, 32);
  auto* gt = dynamic_cast<GeneralizedTournamentLock*>(lock.get());
  ASSERT_NE(gt, nullptr);
  EXPECT_EQ(gt->height(), 5);
  EXPECT_EQ(gt->branching(), 2);
}

TEST(GtTest, SingleProcessLockWorks) {
  auto os = buildCountSystem(MemoryModel::PSO, 1, gtFactory(1));
  sim::Config cfg = sim::initialConfig(os.sys);
  ASSERT_TRUE(sim::runSolo(os.sys, cfg, 0, nullptr));
  EXPECT_EQ(cfg.procs[0].retval, 0);
}

TEST(GtTest, NonPowerBranchingTailNodes) {
  // n = 10, f = 2 -> b = 4; tail nodes have fewer active slots but the
  // lock must still order everyone.
  const int n = 10;
  auto os = buildCountSystem(MemoryModel::PSO, n, gtFactory(2));
  sim::Config cfg = sim::initialConfig(os.sys);
  std::vector<sim::ProcId> order;
  for (int p = 0; p < n; ++p) order.push_back((p * 7) % n);  // scrambled
  sim::runSequential(os.sys, cfg, order);
  for (int k = 0; k < n; ++k) {
    EXPECT_EQ(cfg.procs[order[k]].retval, k);
  }
}

}  // namespace
}  // namespace fencetrade::core
