#include "native/mcs_lock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "native/lock.h"
#include "native/objects.h"

namespace fencetrade::native {
namespace {

TEST(McsLockTest, SingleThreadLockUnlock) {
  McsLock lock(4);
  for (int id = 0; id < 4; ++id) {
    lock.lock(id);
    lock.unlock(id);
  }
}

TEST(McsLockTest, UncontendedCostsTwoRmws) {
  McsLock lock(2);
  resetCasOpCount();
  lock.lock(0);
  lock.unlock(0);
  EXPECT_EQ(casOpCount(), 2u);  // enqueue exchange + dequeue CAS
}

TEST(McsLockTest, MutualExclusionUnderThreads) {
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  McsLock lock(kThreads);
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard<McsLock> g(lock, t);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(McsLockTest, HandoffThroughQueue) {
  // Force the queued path: t0 holds the lock while t1 enqueues, then t0
  // releases; t1 must be woken via its own flag.
  McsLock lock(2);
  std::atomic<int> stage{0};
  std::int64_t shared = 0;

  std::thread t0([&] {
    lock.lock(0);
    shared = 1;
    stage.store(1, std::memory_order_release);
    // Give t1 time to enqueue behind us.
    while (stage.load(std::memory_order_acquire) < 2) {
    }
    shared = 2;
    lock.unlock(0);
  });
  std::thread t1([&] {
    while (stage.load(std::memory_order_acquire) < 1) {
    }
    stage.store(2, std::memory_order_release);
    lock.lock(1);  // must wait until t0 unlocks
    EXPECT_EQ(shared, 2);
    lock.unlock(1);
  });
  t0.join();
  t1.join();
}

TEST(McsLockTest, WorksWithLockedObjects) {
  LockedCounter<McsLock> counter(4);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(counter.fetchAdd(i % 4), i);
  }
}

TEST(McsLockTest, BadParametersRejected) {
  EXPECT_THROW(McsLock bad(0), util::CheckError);
  McsLock lock(2);
  EXPECT_THROW(lock.lock(3), util::CheckError);
}

}  // namespace
}  // namespace fencetrade::native
