// Differential validation of the partial-order reduction
// (ExploreOptions::reduction / LivenessOptions::reduction) against the
// unreduced engines: across litmus tests, the GT_f ordering systems and
// random programs, under all three memory models, with 1 and 4 workers,
// the reduced exploration must reproduce the oracle's outcome set,
// mutual-exclusion verdict and max CS occupancy exactly, and the
// reduced liveness graph must reproduce the termination verdict — while
// visiting no more (and on PSO systems strictly fewer) states.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/bakery.h"
#include "core/caslocks.h"
#include "core/gt.h"
#include "core/objects.h"
#include "core/peterson.h"
#include "sim/builder.h"
#include "sim/explore.h"
#include "sim/litmus.h"
#include "util/rng.h"

namespace fencetrade::sim {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

ExploreResult runExplore(const System& sys, ReductionMode reduction,
                         int workers) {
  ExploreOptions opts;
  opts.maxStates = 5'000'000;
  opts.reduction = reduction;
  opts.workers = workers;
  return explore(sys, opts);
}

/// Reduced runs (both modes, both worker counts) must reproduce the
/// unreduced sequential oracle's observable results exactly; states may
/// only shrink (every reduced-graph state is a real reachable state).
void expectReductionMatchesOracle(const System& sys,
                                  const std::string& label) {
  const auto oracle =
      runExplore(sys, ReductionMode::none, /*workers=*/1);
  ASSERT_FALSE(oracle.capped()) << label;
  for (ReductionMode mode :
       {ReductionMode::persistentSet, ReductionMode::sourceDpor}) {
    for (int workers : {1, 4}) {
      const auto red = runExplore(sys, mode, workers);
      ASSERT_FALSE(red.capped()) << label << " workers=" << workers;
      const std::string ctx = label + " mode=" + reductionModeName(mode) +
                              " workers=" + std::to_string(workers);
      EXPECT_EQ(red.outcomes, oracle.outcomes)
          << ctx << ": outcome sets diverge";
      EXPECT_EQ(red.mutexViolation, oracle.mutexViolation)
          << ctx << ": mutex verdicts diverge";
      EXPECT_EQ(red.maxCsOccupancy, oracle.maxCsOccupancy)
          << ctx << ": occupancy diverges";
      EXPECT_LE(red.statesVisited, oracle.statesVisited)
          << ctx << ": reduction enlarged the space";
    }
  }
}

System gtSystem(MemoryModel m, int f, int n) {
  return core::buildCountSystem(m, n, core::gtFactory(f)).sys;
}

TEST(ReductionTest, LitmusDifferentialAllModels) {
  for (auto m : {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
    const std::string mn = memoryModelName(m);
    expectReductionMatchesOracle(litmusSB(m, false), "SB " + mn);
    expectReductionMatchesOracle(litmusSB(m, true), "SB+fence " + mn);
    expectReductionMatchesOracle(litmusMP(m, false), "MP " + mn);
    expectReductionMatchesOracle(litmusCoRR(m), "CoRR " + mn);
    expectReductionMatchesOracle(litmusWriteBatch(m), "WriteBatch " + mn);
  }
}

TEST(ReductionTest, GtDifferentialAllModelsN2N3) {
  for (auto m : {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
    const std::string mn = memoryModelName(m);
    for (int f : {1, 2}) {
      expectReductionMatchesOracle(
          gtSystem(m, f, 2),
          "GT_" + std::to_string(f) + " n=2 " + mn);
    }
  }
  // n=3 exhaustive sweeps are ~70k-190k states per run; keep them out
  // of the (10-20x slower) sanitizer builds, which still cover n=2.
  if (!kSanitized) {
    for (auto m : {MemoryModel::SC, MemoryModel::TSO, MemoryModel::PSO}) {
      expectReductionMatchesOracle(
          gtSystem(m, 2, 3),
          std::string("GT_2 n=3 ") + memoryModelName(m));
    }
    expectReductionMatchesOracle(gtSystem(MemoryModel::PSO, 1, 3),
                                 "GT_1 n=3 PSO");
  }
}

TEST(ReductionTest, GtN4CappedSmoke) {
  // GT_f at n=4 exceeds 3M reachable states under every model, so the
  // exhaustive differential is infeasible in tier-1 time; this smoke
  // caps both engines and checks that neither reports a (spurious)
  // mutual-exclusion violation in its explored prefix and that the
  // reduction machinery survives the deeper system shape.
  const std::uint64_t cap = kSanitized ? 20'000 : 150'000;
  for (auto m : {MemoryModel::SC, MemoryModel::PSO}) {
    const System sys = gtSystem(m, 2, 4);
    for (ReductionMode reduction :
         {ReductionMode::none, ReductionMode::persistentSet,
          ReductionMode::sourceDpor}) {
      for (int workers : {1, 4}) {
        ExploreOptions opts;
        opts.maxStates = cap;
        opts.reduction = reduction;
        opts.workers = workers;
        const auto res = explore(sys, opts);
        EXPECT_TRUE(res.capped()) << memoryModelName(m);
        EXPECT_FALSE(res.mutexViolation)
            << memoryModelName(m)
            << " reduction=" << reductionModeName(reduction)
            << " workers=" << workers;
      }
    }
  }
}

TEST(ReductionTest, StrictlyShrinksPsoStateSpaces) {
  // The acceptance regression: reduction must measurably shrink PSO
  // explorations, not just stay sound.  (Exact reduced counts are
  // traversal-order dependent — only the full counts are pinned.)
  {
    const System sys = litmusSB(MemoryModel::PSO, false);
    const auto full = runExplore(sys, ReductionMode::none, 1);
    const auto red = runExplore(sys, ReductionMode::persistentSet, 1);
    EXPECT_LT(red.statesVisited, full.statesVisited) << "SB PSO";
  }
  if (!kSanitized) {
    const System sys = gtSystem(MemoryModel::PSO, 2, 3);
    const auto full = runExplore(sys, ReductionMode::none, 1);
    const auto red = runExplore(sys, ReductionMode::persistentSet, 1);
    EXPECT_EQ(full.statesVisited, 186151u);  // pinned full-graph size
    EXPECT_LT(red.statesVisited, full.statesVisited) << "GT_2 n=3 PSO";
    // The DPOR acceptance bar: source sets + sleep sets must beat the
    // persistent-set reduction by at least 3x on GT_2 n=3 PSO.
    const auto dpor = runExplore(sys, ReductionMode::sourceDpor, 1);
    EXPECT_LE(dpor.statesVisited * 3, red.statesVisited)
        << "GT_2 n=3 PSO: source-DPOR under 3x of persistent-set POR";
  } else {
    const System sys = gtSystem(MemoryModel::PSO, 2, 2);
    const auto full = runExplore(sys, ReductionMode::none, 1);
    const auto red = runExplore(sys, ReductionMode::persistentSet, 1);
    EXPECT_LT(red.statesVisited, full.statesVisited) << "GT_2 n=2 PSO";
  }
}

TEST(ReductionTest, SoundUnderForcedHashCollisions) {
  // The cycle proviso probes the visited set; a degenerate hash must
  // not change what the reduced exploration observes.
  const System sys = litmusSB(MemoryModel::PSO, false);
  const auto oracle = runExplore(sys, ReductionMode::none, 1);
  for (ReductionMode mode :
       {ReductionMode::persistentSet, ReductionMode::sourceDpor}) {
    ExploreOptions opts;
    opts.reduction = mode;
    opts.debugStateHash = [](std::string_view) -> std::uint64_t {
      return 42;
    };
    for (int workers : {1, 4}) {
      opts.workers = workers;
      const auto res = explore(sys, opts);
      EXPECT_EQ(res.outcomes, oracle.outcomes)
          << reductionModeName(mode) << " workers=" << workers;
      EXPECT_EQ(res.mutexViolation, oracle.mutexViolation);
    }
  }
}

TEST(ReductionTest, LivenessVerdictPreservedOnLockFamily) {
  std::vector<std::pair<const char*, core::LockFactory>> cases = {
      {"bakery", core::bakeryFactory()},
      {"gt2", core::gtFactory(2)},
      {"peterson", core::petersonTournamentFactory()},
      {"ttas", core::ttasFactory()},
      {"tas", core::tasFactory()},
  };
  for (const auto& [name, factory] : cases) {
    auto os = core::buildCountSystem(MemoryModel::PSO, 2, factory);
    LivenessOptions full;
    const auto oracle = checkLiveness(os.sys, full);
    ASSERT_TRUE(oracle.complete()) << name;
    for (ReductionMode mode :
         {ReductionMode::persistentSet, ReductionMode::sourceDpor}) {
      for (int workers : {1, 4}) {
        LivenessOptions opts;
        opts.reduction = mode;
        opts.workers = workers;
        const auto red = checkLiveness(os.sys, opts);
        ASSERT_TRUE(red.complete())
            << name << " " << reductionModeName(mode)
            << " workers=" << workers;
        EXPECT_EQ(red.allCanTerminate, oracle.allCanTerminate)
            << name << " " << reductionModeName(mode)
            << ": termination verdict diverges (workers=" << workers << ")";
        EXPECT_LE(red.states, oracle.states) << name;
        EXPECT_GE(red.terminalStates, 1u) << name;
      }
    }
  }
}

TEST(ReductionTest, LivenessStillDetectsGenuineDeadlock) {
  // Circular flag wait (see sim_liveness_test): stuck states exist, and
  // the reduced graph — a subgraph over real reachable states — must
  // still expose them.
  System sys;
  sys.model = MemoryModel::PSO;
  Reg f0 = sys.layout.alloc(kNoOwner, "f0");
  Reg f1 = sys.layout.alloc(kNoOwner, "f1");
  auto prog = [&](const std::string& name, Reg waitOn, Reg setAfter,
                  int retval) {
    ProgramBuilder b(name);
    LocalId t = b.local("t");
    b.loop([&] {
      b.readReg(t, waitOn);
      b.exitIf(b.ne(b.L(t), b.imm(0)));
    });
    b.writeRegImm(setAfter, 1);
    b.fence();
    b.retImm(retval);
    return b.build();
  };
  sys.programs.push_back(prog("p0", f1, f0, 0));
  sys.programs.push_back(prog("p1", f0, f1, 1));

  for (ReductionMode mode :
       {ReductionMode::persistentSet, ReductionMode::sourceDpor}) {
    for (int workers : {1, 4}) {
      LivenessOptions opts;
      opts.reduction = mode;
      opts.workers = workers;
      const auto res = checkLiveness(sys, opts);
      ASSERT_TRUE(res.complete())
          << reductionModeName(mode) << " workers=" << workers;
      EXPECT_FALSE(res.allCanTerminate) << "workers=" << workers;
      EXPECT_EQ(res.terminalStates, 0u) << "workers=" << workers;
      EXPECT_GT(res.stuckStates, 0u) << "workers=" << workers;
    }
  }
}

// --- Random-system differential (mirrors the fuzz generator) -------------

constexpr int kRegs = 3;

void emitRandomOps(ProgramBuilder& b, util::Rng& rng, int ops,
                   LocalId scratch, LocalId acc) {
  for (int i = 0; i < ops; ++i) {
    switch (rng.below(4)) {
      case 0:
        b.writeRegImm(static_cast<Reg>(rng.below(kRegs)),
                      static_cast<Value>(1 + rng.below(3)));
        break;
      case 1:
        b.readReg(scratch, static_cast<Reg>(rng.below(kRegs)));
        b.set(acc, b.add(b.mul(b.L(acc), b.imm(5)), b.L(scratch)));
        break;
      case 2:
        b.fence();
        break;
      case 3:
        b.set(acc, b.add(b.L(acc), b.imm(static_cast<Value>(rng.below(7)))));
        break;
    }
  }
}

System randomSystem(std::uint64_t seed, MemoryModel m, int procs, int ops) {
  util::Rng rng(seed);
  System sys;
  sys.model = m;
  for (int r = 0; r < kRegs; ++r) {
    sys.layout.alloc(kNoOwner, "r" + std::to_string(r));
  }
  for (int p = 0; p < procs; ++p) {
    ProgramBuilder b("fuzz#" + std::to_string(p));
    LocalId scratch = b.local("scratch");
    LocalId acc = b.local("acc");
    b.set(acc, b.imm(0));
    emitRandomOps(b, rng, ops, scratch, acc);
    b.fence();
    b.ret(b.L(acc));
    sys.programs.push_back(b.build());
  }
  return sys;
}

TEST(ReductionTest, RandomSystemDifferentialPso) {
  // On failure the seed is printed; reproduce with
  // randomSystem(seed, MemoryModel::PSO, 2, 4).
  const std::uint64_t kSeeds = kSanitized ? 20 : 60;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const System sys = randomSystem(seed, MemoryModel::PSO, 2, 4);
    const auto oracle = runExplore(sys, ReductionMode::none, 1);
    ASSERT_FALSE(oracle.capped()) << "seed " << seed;
    const int multi = 2 + static_cast<int>(seed % 3);  // 2..4 workers
    for (ReductionMode mode :
         {ReductionMode::persistentSet, ReductionMode::sourceDpor}) {
      for (int workers : {1, multi}) {
        const auto red = runExplore(sys, mode, workers);
        ASSERT_EQ(red.outcomes, oracle.outcomes)
            << "seed " << seed << " " << reductionModeName(mode)
            << " workers=" << workers
            << ": reduced explorer missed or invented outcomes";
        EXPECT_EQ(red.mutexViolation, oracle.mutexViolation)
            << "seed " << seed << " workers=" << workers;
        EXPECT_EQ(red.maxCsOccupancy, oracle.maxCsOccupancy)
            << "seed " << seed << " workers=" << workers;
        EXPECT_LE(red.statesVisited, oracle.statesVisited)
            << "seed " << seed << " workers=" << workers;
      }
    }
  }
}

}  // namespace
}  // namespace fencetrade::sim
