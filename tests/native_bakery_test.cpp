#include "native/bakery_lock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "native/fences.h"
#include "native/lock.h"
#include "util/check.h"

namespace fencetrade::native {
namespace {

TEST(NativeBakeryTest, SingleThreadLockUnlock) {
  BakeryLock lock(4);
  lock.lock(0);
  lock.unlock(0);
  lock.lock(3);
  lock.unlock(3);
}

TEST(NativeBakeryTest, FencesPerPassageExactlyFour) {
  BakeryLock lock(8);
  resetFenceCount();
  FenceCountScope scope;
  lock.lock(2);
  lock.unlock(2);
  EXPECT_EQ(scope.count(), BakeryLock::kFencesPerPassage);
}

TEST(NativeBakeryTest, FenceCountIndependentOfCapacityUncontended) {
  // The paper's point: Bakery's fence cost is O(1) regardless of n.
  for (int n : {2, 16, 128}) {
    BakeryLock lock(n);
    FenceCountScope scope;
    lock.lock(0);
    lock.unlock(0);
    EXPECT_EQ(scope.count(), 4u) << "n=" << n;
  }
}

TEST(NativeBakeryTest, MutualExclusionUnderThreads) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  BakeryLock lock(kThreads);
  std::int64_t counter = 0;  // deliberately non-atomic

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard<BakeryLock> g(lock, t);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(NativeBakeryTest, NoOvertakingWithinDoorwayFifoIsh) {
  // Bakery is FCFS with respect to the doorway: a thread that completes
  // its doorway before another starts must enter first.  Single-threaded
  // proxy: sequential passes alternate cleanly.
  BakeryLock lock(2);
  for (int i = 0; i < 100; ++i) {
    const int id = i % 2;
    lock.lock(id);
    lock.unlock(id);
  }
}

TEST(NativeBakeryTest, BadSlotThrows) {
  BakeryLock lock(2);
  EXPECT_THROW(lock.lock(2), util::CheckError);
  EXPECT_THROW(lock.lock(-1), util::CheckError);
  EXPECT_THROW(lock.unlock(5), util::CheckError);
}

TEST(NativeBakeryTest, ZeroCapacityRejected) {
  EXPECT_THROW(BakeryLock lock(0), util::CheckError);
}

TEST(NativeBakeryTest, StressPairwiseHandoff) {
  // Two threads ping-pong through the lock, each verifying it observes
  // a consistent pair of shared variables (torn under broken mutex).
  BakeryLock lock(2);
  std::int64_t a = 0, b = 0;
  bool torn = false;

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 3000; ++i) {
        LockGuard<BakeryLock> g(lock, t);
        if (a != b) torn = true;
        ++a;
        ++b;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(torn);
  EXPECT_EQ(a, 6000);
  EXPECT_EQ(b, 6000);
}

}  // namespace
}  // namespace fencetrade::native
