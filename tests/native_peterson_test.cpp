#include "native/peterson_lock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "native/lock.h"
#include "native/objects.h"
#include "util/check.h"

namespace fencetrade::native {
namespace {

TEST(NativePetersonTest, StructureAndFenceFormula) {
  PetersonTournamentLock lock(16);
  EXPECT_EQ(lock.height(), 4);
  EXPECT_EQ(lock.fencesPerPassage(), 12u);

  PetersonTournamentLock tso(16, PetersonFencing::TsoOnly);
  EXPECT_EQ(tso.fencesPerPassage(), 8u);
}

TEST(NativePetersonTest, MeasuredFencesMatchFormula) {
  for (auto fencing :
       {PetersonFencing::PsoSafe, PetersonFencing::TsoOnly}) {
    PetersonTournamentLock lock(32, fencing);
    FenceCountScope scope;
    lock.lock(13);
    lock.unlock(13);
    EXPECT_EQ(scope.count(), lock.fencesPerPassage());
  }
}

TEST(NativePetersonTest, FewerFencesThanBakeryTournament) {
  // The point of the Peterson tree: 3 fences per level instead of 4.
  PetersonTournamentLock pet(64);
  EXPECT_EQ(pet.fencesPerPassage(), 18u);  // vs GT: 24
}

TEST(NativePetersonTest, MutualExclusionUnderThreads) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  for (auto fencing :
       {PetersonFencing::PsoSafe, PetersonFencing::TsoOnly}) {
    PetersonTournamentLock lock(kThreads, fencing);
    std::int64_t counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          LockGuard<PetersonTournamentLock> g(lock, t);
          ++counter;
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIters);
  }
}

TEST(NativePetersonTest, WorksAsCounterLock) {
  LockedCounter<PetersonTournamentLock> counter(8);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(counter.fetchAdd(i % 8), i);
  }
}

TEST(NativePetersonTest, NonPowerOfTwoCapacity) {
  PetersonTournamentLock lock(5);
  EXPECT_EQ(lock.height(), 3);
  for (int id = 0; id < 5; ++id) {
    lock.lock(id);
    lock.unlock(id);
  }
}

TEST(NativePetersonTest, BadSlotThrows) {
  PetersonTournamentLock lock(4);
  EXPECT_THROW(lock.lock(4), util::CheckError);
  EXPECT_THROW(lock.unlock(-1), util::CheckError);
  EXPECT_THROW(PetersonTournamentLock bad(0), util::CheckError);
}

}  // namespace
}  // namespace fencetrade::native
