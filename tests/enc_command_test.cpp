#include "encoding/command.h"

#include <gtest/gtest.h>

#include "encoding/stack.h"
#include "util/check.h"

namespace fencetrade::enc {
namespace {

TEST(CommandTest, ValuesPerPaper) {
  // Section 5.3: proceed and commit have value 1, wait commands value k.
  EXPECT_EQ(Command::proceed().value(), 1);
  EXPECT_EQ(Command::commit().value(), 1);
  EXPECT_EQ(Command::waitHiddenCommit(5).value(), 5);
  EXPECT_EQ(Command::waitReadFinish(3).value(), 3);
  EXPECT_EQ(Command::waitLocalFinish(7).value(), 7);
}

TEST(CommandTest, BitsGrowLogarithmicallyInParameter) {
  const double b1 = Command::waitHiddenCommit(1).bits();
  const double b16 = Command::waitHiddenCommit(16).bits();
  const double b256 = Command::waitHiddenCommit(256).bits();
  EXPECT_NEAR(b16 - b1, 4.0, 1e-9);
  EXPECT_NEAR(b256 - b16, 4.0, 1e-9);
  EXPECT_GT(b1, 0.0);
}

TEST(CommandTest, ConstantBitsForParameterlessCommands) {
  EXPECT_DOUBLE_EQ(Command::proceed().bits(), Command::commit().bits());
  EXPECT_LE(Command::proceed().bits(), 4.0);
}

TEST(CommandTest, ToStringShowsKindAndParameter) {
  EXPECT_EQ(Command::proceed().toString(), "proceed");
  EXPECT_EQ(Command::waitReadFinish(4).toString(), "wait-read-finish(4)");
  Command c = Command::waitLocalFinish(2);
  c.waitSet = {1, 3};
  EXPECT_EQ(c.toString(), "wait-local-finish(2, {1,3})");
}

TEST(StackTest, PushPopTopBottomDiscipline) {
  CommandStack st;
  EXPECT_TRUE(st.empty());
  st.pushBottom(Command::proceed());
  st.pushBottom(Command::commit());
  st.pushTop(Command::waitHiddenCommit(2));
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st.top().kind, CommandKind::WaitHiddenCommit);
  st.pop();
  EXPECT_EQ(st.top().kind, CommandKind::Proceed);
  st.pop();
  EXPECT_EQ(st.top().kind, CommandKind::Commit);
  st.pop();
  EXPECT_TRUE(st.empty());
  EXPECT_THROW(st.pop(), util::CheckError);
  EXPECT_THROW(st.top(), util::CheckError);
}

TEST(StackTest, ValueSumAndBits) {
  CommandStack st;
  st.pushBottom(Command::proceed());            // value 1
  st.pushBottom(Command::waitReadFinish(6));    // value 6
  st.pushBottom(Command::commit());             // value 1
  EXPECT_EQ(st.valueSum(), 8);
  EXPECT_GT(st.bitLength(), 3 * Command::proceed().bits() - 1e-9);
}

TEST(StackTest, SummarizeAggregatesAcrossStacks) {
  StackSequence stacks(3);
  stacks[0].pushBottom(Command::proceed());
  stacks[0].pushBottom(Command::commit());
  stacks[1].pushBottom(Command::waitHiddenCommit(4));
  stacks[2].pushBottom(Command::waitLocalFinish(2));

  auto s = summarize(stacks);
  EXPECT_EQ(s.commands, 4);
  EXPECT_EQ(s.valueSum, 1 + 1 + 4 + 2);
  EXPECT_EQ(s.countOf[static_cast<int>(CommandKind::Proceed)], 1);
  EXPECT_EQ(s.countOf[static_cast<int>(CommandKind::WaitHiddenCommit)], 1);
  EXPECT_EQ(s.valueSumOf[static_cast<int>(CommandKind::WaitHiddenCommit)], 4);
  EXPECT_GT(s.bits, 0.0);
}

TEST(StackTest, ToStringListsTopToBottom) {
  CommandStack st;
  st.pushBottom(Command::proceed());
  st.pushBottom(Command::commit());
  EXPECT_EQ(st.toString(), "[proceed | commit]");
}

}  // namespace
}  // namespace fencetrade::enc
